package geom

// Exact region-region intersection predicates: the expensive
// geometry-to-geometry tests that the raster set operations replace. They
// serve as the ground-truth oracle for the approximate intersection join and
// as the refinement step of exact baselines.

// PolygonsIntersect reports whether the two polygons share at least one
// point, handling edge crossings, containment and hole exclusion.
func PolygonsIntersect(a, b *Polygon) bool {
	if !a.Bounds().Intersects(b.Bounds()) {
		return false
	}
	// Any boundary crossing means intersection.
	for _, ra := range a.Rings() {
		for i := range ra {
			e := ra.Edge(i)
			for _, rb := range b.Rings() {
				if rb.IntersectsSegment(e) {
					return true
				}
			}
		}
	}
	// No boundary crossing: one polygon is entirely inside the other (or a
	// hole of the other), or they are disjoint — one representative vertex
	// per side decides, because containment is uniform without crossings.
	return a.ContainsPoint(b.Outer[0]) || b.ContainsPoint(a.Outer[0])
}

// RegionsIntersect reports whether two regions (Polygon or MultiPolygon)
// share at least one point.
func RegionsIntersect(a, b Region) bool {
	for _, pa := range regionPolys(a) {
		for _, pb := range regionPolys(b) {
			if PolygonsIntersect(pa, pb) {
				return true
			}
		}
	}
	return false
}

// RegionDistance returns an upper estimate of the distance between two
// disjoint regions, computed from boundary samples at the given step (0 when
// the regions intersect). It is the measurement tool for the intersection
// join's distance-bound guarantee.
func RegionDistance(a, b Region, step float64) float64 {
	if RegionsIntersect(a, b) {
		return 0
	}
	d := -1.0
	for _, s := range SampleRegionBoundary(a, step) {
		v := b.DistToPoint(s)
		if d < 0 || v < d {
			d = v
		}
	}
	if d < 0 {
		return 0
	}
	return d
}

func regionPolys(rg Region) []*Polygon {
	switch v := rg.(type) {
	case *Polygon:
		return []*Polygon{v}
	case *MultiPolygon:
		return v.Polygons
	default:
		return nil
	}
}
