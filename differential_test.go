package distbound

import (
	"fmt"
	"math/rand"
	"testing"

	"distbound/internal/data"
	"distbound/internal/testutil"
)

// TestDifferentialMutableVsRebuild is the acceptance harness for the write
// path: after an arbitrary Append/Delete sequence, every strategy's
// AggregateDataset result over the mutated dataset must be bit-identical to
// the same strategy over a dataset freshly registered from the surviving
// points — pre- and post-compaction, for all five aggregates — and every
// bounded strategy must respect the distance-bound guarantee against ground
// truth. Weights come from testutil.ExactWeights, so float reassociation
// cannot mask (or fake) a divergence.
func TestDifferentialMutableVsRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	regions := dataRegions(72, 6, 6, 8)
	pool, _ := data.TaxiPoints(73, 24_000)
	weights := testutil.ExactWeights(rng, len(pool))

	e := NewEngine(regions)
	ds, err := e.RegisterPoints("live", pool[:16_000], weights[:16_000])
	if err != nil {
		t.Fatal(err)
	}
	ds.SetCompactionThreshold(0) // compaction is driven explicitly below

	// Random mutation script: interleaved appends from the reserve and
	// deletes of random live IDs.
	live := make([]uint64, 0, len(pool))
	for id := uint64(0); id < 16_000; id++ {
		live = append(live, id)
	}
	off := 16_000
	for round := 0; round < 6; round++ {
		n := 500 + rng.Intn(1000)
		if off+n > len(pool) {
			n = len(pool) - off
		}
		ids, err := ds.Append(pool[off:off+n], weights[off:off+n])
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, ids...)
		off += n
		for k := 0; k < 400+rng.Intn(400); k++ {
			i := rng.Intn(len(live))
			ds.Delete(live[i])
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	if st := ds.Stats(); st.Tombstones == 0 || st.DeltaLive == 0 || st.DeltaDead == 0 {
		t.Fatalf("mutation script failed to exercise every structure: %+v", st)
	}

	strategies := []Strategy{StrategyExact, StrategyACT, StrategyBRJ, StrategyPointIdx}
	aggs := []Agg{Count, Sum, Avg, Min, Max}
	check := func(phase string) {
		t.Helper()
		pts, ws := ds.Points()
		if len(pts) != len(live) {
			t.Fatalf("%s: %d survivors, reference holds %d", phase, len(pts), len(live))
		}
		rebuilt := NewEngine(regions)
		ds2, err := rebuilt.RegisterPoints("rebuild", pts, ws)
		if err != nil {
			t.Fatal(err)
		}
		brutePS := PointSet{Pts: pts, Weights: ws}
		for _, bound := range []float64{16, 64} {
			cls := testutil.Classify(pts, ws, regions, bound)
			for _, agg := range aggs {
				brute, err := BruteForceJoin(brutePS, regions, agg)
				if err != nil {
					t.Fatal(err)
				}
				for _, strat := range strategies {
					if strat == StrategyBRJ && (agg == Min || agg == Max) {
						continue
					}
					label := fmt.Sprintf("%s bound=%g %v %v", phase, bound, agg, strat)
					got, err := e.runDataset(ds, agg, bound, strat, 1)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					want, err := rebuilt.runDataset(ds2, agg, bound, strat, 1)
					if err != nil {
						t.Fatalf("%s rebuild: %v", label, err)
					}
					// The acceptance criterion: mutated serving state and a
					// from-scratch rebuild are indistinguishable, bitwise.
					testutil.CheckIdentical(t, label, want, got)
					if strat == StrategyExact {
						testutil.CheckIdentical(t, label+" vs brute force", brute, got)
					} else {
						cls.Check(t, label, agg, got)
					}
				}
			}
		}
	}

	check("pre-compaction")
	gen := ds.Generation()
	ds.Compact()
	if ds.Generation() != gen+1 {
		t.Fatalf("compaction did not bump the generation")
	}
	if st := ds.Stats(); st.Tombstones != 0 || st.DeltaLive != 0 || st.DeltaDead != 0 {
		t.Fatalf("compaction left residue: %+v", st)
	}
	check("post-compaction")
}
