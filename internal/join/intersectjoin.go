package join

import (
	"sort"

	"distbound/internal/geom"
	"distbound/internal/raster"
	"distbound/internal/sfc"
)

// IntersectJoiner evaluates region-region intersection joins on
// distance-bounded approximations: §4's point that once geometries are cells,
// a polygon-polygon join is the same 1D-range machinery as a point-polygon
// query, with no geometry-specific code. Both inputs are covered
// conservatively, so the join reports a superset of the truly intersecting
// pairs, and every false pair is within the sum of the two distance bounds
// of touching.
type IntersectJoiner struct {
	left, right []*raster.Approximation
	bound       float64
}

// NewIntersectJoiner approximates both region sets at distance bound eps.
func NewIntersectJoiner(left, right []geom.Region, d sfc.Domain, curve sfc.Curve, eps float64) (*IntersectJoiner, error) {
	build := func(regions []geom.Region) ([]*raster.Approximation, error) {
		out := make([]*raster.Approximation, len(regions))
		for i, rg := range regions {
			a, err := raster.Hierarchical(rg, d, curve, eps, raster.Conservative)
			if err != nil {
				return nil, err
			}
			out[i] = a
		}
		return out, nil
	}
	l, err := build(left)
	if err != nil {
		return nil, err
	}
	r, err := build(right)
	if err != nil {
		return nil, err
	}
	return &IntersectJoiner{left: l, right: r, bound: 2 * eps}, nil
}

// Bound returns the guarantee of the join: every reported pair of regions is
// within Bound of intersecting (0 distance means truly intersecting), and no
// intersecting pair is missed.
func (j *IntersectJoiner) Bound() float64 { return j.bound }

// ownedRange is a leaf-position interval tagged with its owning region.
type ownedRange struct {
	lo, hi uint64
	id     int32
}

// Pairs returns every (left, right) index pair whose approximations share a
// leaf position, via a plane-sweep over the two sorted range lists: a pair
// overlaps exactly when one of its ranges starts inside a range of the other
// side, so two symmetric start-point passes find all pairs in
// O((n+m)·log(n+m) + output).
func (j *IntersectJoiner) Pairs() [][2]int32 {
	leftRanges := collectRanges(j.left)
	rightRanges := collectRanges(j.right)

	seen := make(map[uint64]struct{})
	var out [][2]int32
	emit := func(li, ri int32) {
		key := uint64(uint32(li))<<32 | uint64(uint32(ri))
		if _, dup := seen[key]; dup {
			return
		}
		seen[key] = struct{}{}
		out = append(out, [2]int32{li, ri})
	}

	// Pass 1: right ranges starting inside a left range.
	sweepStarts(leftRanges, rightRanges, func(l, r ownedRange) { emit(l.id, r.id) })
	// Pass 2: left ranges starting inside a right range (covers the case
	// where the left range starts inside the right one).
	sweepStarts(rightRanges, leftRanges, func(r, l ownedRange) { emit(l.id, r.id) })

	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

func collectRanges(as []*raster.Approximation) []ownedRange {
	var out []ownedRange
	for id, a := range as {
		for _, r := range a.Ranges() {
			out = append(out, ownedRange{lo: r.Lo, hi: r.Hi, id: int32(id)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].lo < out[j].lo })
	return out
}

// sweepStarts calls fn(container, starter) for every pair where a range of
// starters begins inside a range of containers. Both inputs are sorted by lo.
func sweepStarts(containers, starters []ownedRange, fn func(c, s ownedRange)) {
	// Active containers ordered by hi in a simple heap-free structure: since
	// output size dominates, scan actives per starter after pruning.
	type active struct {
		hi uint64
		r  ownedRange
	}
	var act []active
	ci := 0
	for _, s := range starters {
		for ci < len(containers) && containers[ci].lo <= s.lo {
			act = append(act, active{hi: containers[ci].hi, r: containers[ci]})
			ci++
		}
		// Prune expired containers (hi < s.lo), compacting in place.
		k := 0
		for _, a := range act {
			if a.hi >= s.lo {
				act[k] = a
				k++
			}
		}
		act = act[:k]
		for _, a := range act {
			fn(a.r, s)
		}
	}
}
