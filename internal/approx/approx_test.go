package approx

import (
	"math"
	"math/rand"
	"testing"

	"distbound/internal/geom"
	"distbound/internal/sfc"
)

func star(rng *rand.Rand, cx, cy, rMin, rMax float64, n int) *geom.Polygon {
	ring := make(geom.Ring, n)
	for i := 0; i < n; i++ {
		ang := 2 * math.Pi * float64(i) / float64(n)
		r := rMin + rng.Float64()*(rMax-rMin)
		ring[i] = geom.Pt(cx+r*math.Cos(ang), cy+r*math.Sin(ang))
	}
	return geom.MustPolygon(ring)
}

func testDomain(t *testing.T) sfc.Domain {
	t.Helper()
	d, err := sfc.NewDomain(geom.Pt(0, 0), 1024)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// allApproximations builds every approximation kind for p.
func allApproximations(t *testing.T, p *geom.Polygon, d sfc.Domain) []Geometry {
	t.Helper()
	hr, err := HR(p, d, sfc.Hilbert{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	return []Geometry{
		MBR(p), RMBR(p), MBC(p), CH(p), NCorner(p, 5), CBR(p),
		UR(p, d, sfc.Morton{}, 8), hr,
	}
}

func TestAllApproximationsEncloseConvexInput(t *testing.T) {
	// For containment-style (conservative) approximations, every point of
	// the polygon must be contained.
	d := testDomain(t)
	rng := rand.New(rand.NewSource(1))
	p := star(rng, 512, 512, 100, 250, 14)
	for _, g := range allApproximations(t, p, d) {
		misses := 0
		for i := 0; i < 2000; i++ {
			pt := geom.Pt(rng.Float64()*1024, rng.Float64()*1024)
			if p.ContainsPoint(pt) && !g.ContainsPoint(pt) {
				misses++
			}
		}
		if misses > 0 {
			t.Errorf("%s: %d false negatives on a conservative approximation", g.Name(), misses)
		}
	}
}

func TestApproxAreasOrdered(t *testing.T) {
	// MBR dominates RMBR dominates CH in area; CH has the least area of the
	// convex approximations.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		p := star(rng, 512, 512, 80, 240, 6+rng.Intn(20))
		mbr, rmbr, ch := MBR(p).Area(), RMBR(p).Area(), CH(p).Area()
		const slack = 1 + 1e-9
		if rmbr > mbr*slack {
			t.Errorf("trial %d: RMBR area %g exceeds MBR %g", trial, rmbr, mbr)
		}
		if ch > rmbr*slack {
			t.Errorf("trial %d: CH area %g exceeds RMBR %g", trial, ch, rmbr)
		}
		if cbr := CBR(p).Area(); cbr > mbr*slack {
			t.Errorf("trial %d: CBR area %g exceeds MBR %g", trial, cbr, mbr)
		}
		if nc := NCorner(p, 5).Area(); nc < ch/slack {
			t.Errorf("trial %d: 5-corner area %g below hull %g", trial, nc, ch)
		}
	}
}

func TestRasterHausdorffWithinBound(t *testing.T) {
	d := testDomain(t)
	rng := rand.New(rand.NewSource(3))
	p := star(rng, 512, 512, 80, 240, 12)
	eps := 8.0
	hr, err := HR(p, d, sfc.Hilbert{}, eps)
	if err != nil {
		t.Fatal(err)
	}
	q := Measure(p, hr, 1)
	if q.Hausdorff > eps {
		t.Errorf("HR Hausdorff %g exceeds bound %g", q.Hausdorff, eps)
	}
	ur := UR(p, d, sfc.Morton{}, 9) // cell side 2, diagonal 2.83
	q2 := Measure(p, ur, 0.5)
	if bound := d.CellDiagonal(9); q2.Hausdorff > bound {
		t.Errorf("UR Hausdorff %g exceeds diagonal bound %g", q2.Hausdorff, bound)
	}
}

func TestMBRHausdorffIsDataDependent(t *testing.T) {
	// §2.2: the MBR's Hausdorff distance is unbounded — a thin diagonal
	// sliver has a corner far from any polygon point — while the raster
	// bound stays fixed. Elongating the sliver grows the MBR error but not
	// the raster error.
	dom := testDomain(t)
	thin := func(l float64) *geom.Polygon {
		return geom.MustPolygon(geom.Ring{
			geom.Pt(100, 100), geom.Pt(100+l, 100+l), geom.Pt(100+l+2, 100+l), geom.Pt(102, 100),
		})
	}
	prev := 0.0
	for _, l := range []float64{50, 100, 200, 400} {
		p := thin(l)
		qMBR := Measure(p, MBR(p), 2)
		if qMBR.Hausdorff <= prev {
			t.Errorf("l=%g: MBR Hausdorff %g did not grow (prev %g)", l, qMBR.Hausdorff, prev)
		}
		prev = qMBR.Hausdorff
		hr, err := HR(p, dom, sfc.Hilbert{}, 8)
		if err != nil {
			t.Fatal(err)
		}
		qHR := Measure(p, hr, 1)
		if qHR.Hausdorff > 8 {
			t.Errorf("l=%g: HR Hausdorff %g exceeds bound 8", l, qHR.Hausdorff)
		}
	}
	if prev < 100 {
		t.Errorf("MBR Hausdorff stayed small (%g); expected unbounded growth", prev)
	}
}

func TestCBRTighterThanMBR(t *testing.T) {
	// A diamond leaves large empty MBR corners; CBR must clip them.
	p := geom.MustPolygon(geom.Ring{
		geom.Pt(50, 0), geom.Pt(100, 50), geom.Pt(50, 100), geom.Pt(0, 50),
	})
	mbr, cbr := MBR(p), CBR(p)
	if cbr.Area() >= mbr.Area() {
		t.Errorf("CBR area %g not below MBR area %g", cbr.Area(), mbr.Area())
	}
	// Clipped corners exclude the dead space.
	if cbr.ContainsPoint(geom.Pt(1, 1)) {
		t.Error("CBR contains clipped corner point")
	}
	if !cbr.ContainsPoint(geom.Pt(50, 50)) {
		t.Error("CBR misses polygon center")
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		pt := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		if p.ContainsPoint(pt) && !cbr.ContainsPoint(pt) {
			t.Fatalf("CBR false negative at %v", pt)
		}
	}
}

func TestMeasureContainment(t *testing.T) {
	d := testDomain(t)
	rng := rand.New(rand.NewSource(5))
	p := star(rng, 512, 512, 80, 240, 10)
	probes := make([]geom.Point, 5000)
	for i := range probes {
		probes[i] = geom.Pt(rng.Float64()*1024, rng.Float64()*1024)
	}
	eps := 8.0
	hr, err := HR(p, d, sfc.Hilbert{}, eps)
	if err != nil {
		t.Fatal(err)
	}
	ce := MeasureContainment(p, hr, probes)
	if ce.FalseNegatives != 0 {
		t.Errorf("conservative HR produced %d false negatives", ce.FalseNegatives)
	}
	if ce.MaxErrorDist > eps {
		t.Errorf("HR error distance %g exceeds bound %g", ce.MaxErrorDist, eps)
	}
	ceMBR := MeasureContainment(p, MBR(p), probes)
	if ceMBR.FalsePositives <= ce.FalsePositives {
		t.Errorf("MBR false positives (%d) not above HR's (%d)", ceMBR.FalsePositives, ce.FalsePositives)
	}
	if ce.Probes != len(probes) {
		t.Error("probe count not recorded")
	}
}

func TestFalseAreaRatioOrdering(t *testing.T) {
	// Raster approximations at a fine level must have far less dead space
	// than the MBR for a star-shaped polygon.
	d := testDomain(t)
	rng := rand.New(rand.NewSource(6))
	p := star(rng, 512, 512, 60, 250, 16)
	mbrQ := Measure(p, MBR(p), 4)
	urQ := Measure(p, UR(p, d, sfc.Morton{}, 9), 4)
	if urQ.FalseAreaRatio >= mbrQ.FalseAreaRatio {
		t.Errorf("UR false area %g not below MBR %g", urQ.FalseAreaRatio, mbrQ.FalseAreaRatio)
	}
	if urQ.FalseAreaRatio < 0 {
		t.Errorf("conservative UR false area negative: %g", urQ.FalseAreaRatio)
	}
}

func TestNames(t *testing.T) {
	d := testDomain(t)
	rng := rand.New(rand.NewSource(7))
	p := star(rng, 512, 512, 100, 200, 8)
	want := map[string]bool{
		"MBR": true, "RMBR": true, "MBC": true, "CH": true,
		"5-C": true, "CBR": true, "UR": true, "HR": true,
	}
	for _, g := range allApproximations(t, p, d) {
		if !want[g.Name()] {
			t.Errorf("unexpected name %q", g.Name())
		}
		delete(want, g.Name())
	}
	if len(want) > 0 {
		t.Errorf("missing approximations: %v", want)
	}
	if NCorner(p, 4).Name() != "4-C" || NCorner(p, 7).Name() != "n-C" {
		t.Error("n-corner naming wrong")
	}
}
