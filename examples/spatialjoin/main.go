// Spatial join: a polygon-polygon intersection join evaluated entirely on
// distance-bounded raster approximations (§4/§5). Instead of
// geometry-to-geometry tests, overlaps are observed at the cell level — the
// same 1D-range machinery that answers point queries — with the conservative
// guarantee: no intersecting pair is ever missed, and any extra pair is
// within 2ε of touching.
package main

import (
	"fmt"
	"log"

	"distbound"
	"distbound/internal/data"
)

func main() {
	// Two region layers over the same city: administrative districts and
	// (differently seeded, offset) service zones.
	districts := data.Regions(data.Partition(31, 6, 6, 4))
	zones := data.Regions(data.Partition(77, 7, 5, 3))

	const eps = 8.0 // meters
	pairs, err := distbound.IntersectJoin(districts, zones, eps)
	if err != nil {
		log.Fatal(err)
	}

	// How good is the approximate join? Compare against the exact oracle.
	falsePairs := 0
	for _, p := range pairs {
		if !distbound.RegionsIntersect(districts[p[0]], zones[p[1]]) {
			falsePairs++
		}
	}
	exactPairs := 0
	for _, d := range districts {
		for _, z := range zones {
			if distbound.RegionsIntersect(d, z) {
				exactPairs++
			}
		}
	}

	fmt.Printf("districts: %d, zones: %d\n", len(districts), len(zones))
	fmt.Printf("approximate join reported %d pairs (bound: within %.0f m of touching)\n",
		len(pairs), 2*eps)
	fmt.Printf("exactly intersecting pairs: %d (all contained in the report)\n", exactPairs)
	fmt.Printf("false pairs: %d — each provably within %.0f m of intersecting\n", falsePairs, 2*eps)
	fmt.Println("\nfirst few pairs:")
	for i, p := range pairs {
		if i == 8 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  district %2d ∩ zone %2d\n", p[0], p[1])
	}
}
