// Package release models the Response/Release pooling shape for the
// releasepair fixtures.
package release

type respScratch struct{ out []float64 }

type Response struct {
	Results []float64
	Plan    string
	Explain string
	scratch *respScratch
}

func (r *Response) Release() {}

func Do() *Response { return &Response{Results: []float64{1}} }

func good() float64 {
	r := Do()
	v := r.Results[0]
	r.Release()
	return v
}

func deferred() float64 {
	r := Do()
	defer r.Release()
	return r.Results[0]
}

func bad() float64 {
	r := Do()
	r.Release()
	return r.Results[0] // want `read after`
}

func badExplain() string {
	r := Do()
	r.Release()
	return r.Explain // want `read after`
}

func badBranch(cond bool) float64 {
	r := Do()
	if cond {
		r.Release()
	}
	return r.Results[0] // want `read after`
}

func badLoop(n int) float64 {
	r := Do()
	total := 0.0
	for i := 0; i < n; i++ {
		total += r.Results[0] // want `read after`
		r.Release()
	}
	return total
}

func rearmed() float64 {
	r := Do()
	r.Release()
	r = Do()
	v := r.Results[0]
	r.Release()
	return v
}

func independent() float64 {
	a := Do()
	b := Do()
	a.Release()
	v := b.Results[0] // b is still live
	b.Release()
	return v
}
