// Taxi aggregation: the motivating example of Figure 2 in the paper. A taxi
// service counts trips originating inside a region P. The MBR answer can
// include points far from P, while the distance-bounded raster answer only
// ever miscounts points within ε of P's boundary — making the approximate
// result interpretable. The counting runs through the engine's unified
// Request API over a registered resident dataset, so every bound probes the
// same learned-index artifact instead of re-streaming the points.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"distbound"
	"distbound/internal/data"
)

func main() {
	pts, _ := data.TaxiPoints(2, 200_000)

	// An irregular analysis region P (a jagged dodecagon downtown).
	center := distbound.Pt(data.CitySize/2, data.CitySize/2)
	var ring distbound.Ring
	for i := 0; i < 12; i++ {
		ang := 2 * math.Pi * float64(i) / 12
		r := 3000.0
		if i%2 == 0 {
			r = 5200
		}
		ring = append(ring, distbound.Pt(center.X+r*math.Cos(ang), center.Y+r*math.Sin(ang)))
	}
	p, err := distbound.NewPolygon(ring)
	if err != nil {
		log.Fatal(err)
	}

	// Exact count (the expensive way: one PIP test per point).
	exact := 0
	for _, pt := range pts {
		if p.ContainsPoint(pt) {
			exact++
		}
	}

	// MBR count (the classical filter answer) and how far its false
	// positives can be from P.
	mbr := p.Bounds()
	mbrCount, worstMBR := 0, 0.0
	for _, pt := range pts {
		if mbr.ContainsPoint(pt) {
			mbrCount++
			if !p.ContainsPoint(pt) {
				if d := p.BoundaryDist(pt); d > worstMBR {
					worstMBR = d
				}
			}
		}
	}

	// Distance-bounded counts through the engine: register the trips once,
	// then one Request per bound; the forced pointidx strategy probes the
	// resident learned index over P's cover ranges.
	// The engine's domain covers its regions, so trips outside P's bounding
	// square are dropped at registration: they lie outside every cover and
	// can never match, and indexing only the candidates keeps the resident
	// artifact small. Dropped() makes the exclusion visible.
	e := distbound.NewEngine([]distbound.Region{p})
	ds, err := e.RegisterPoints("trips", pts, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %d of %d trips (%d outside P's domain can never match)\n",
		ds.Len(), len(pts), ds.Dropped())
	ctx := context.Background()

	fmt.Printf("region P: %d vertices, area %.1f km²\n", len(ring), p.Area()/1e6)
	fmt.Printf("%-22s %8s  %s\n", "method", "count", "error interpretation")
	fmt.Printf("%-22s %8d  ground truth\n", "exact (PIP)", exact)
	fmt.Printf("%-22s %8d  false positives up to %.0f m from P!\n", "MBR filter", mbrCount, worstMBR)
	pidx := distbound.StrategyPointIdx
	for _, bound := range []float64{128, 32, 8} {
		resp, err := e.Do(ctx, distbound.Request{
			Dataset:  ds,
			Aggs:     []distbound.Agg{distbound.Count},
			Bound:    bound,
			Strategy: &pidx,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %8d  all errors within %g m of P's boundary\n",
			fmt.Sprintf("raster (ε = %g m)", bound), resp.Results[0].Counts[0], bound)
	}
}
