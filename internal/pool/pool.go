// Package pool provides the one worker-pool primitive shared by the
// parallel joins and the batched engine: run n independent jobs across k
// workers, with worker-local state addressed by worker index and
// first-error-wins semantics. Centralizing it also fixes a subtle hazard of
// hand-rolled pools over unbuffered channels: a worker that stops
// receiving on error would deadlock the feeder, so here workers keep
// draining the channel after a failure without executing further jobs.
package pool

import (
	"context"
	"runtime"
	"sync"
)

// Workers clamps a requested worker count (≤ 0 selects GOMAXPROCS) to the
// job count, minimum 1.
func Workers(requested, jobs int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// SplitWeighted partitions n jobs (job i carrying weight(i) ≥ 0) into at
// most k contiguous shards of roughly equal total weight, appending
// [lo, hi) bounds to out and returning it. Unlike an even count split, a
// weighted split keeps one outsized job — a region with a huge cover, a
// range spanning half the column — from serializing a whole worker behind
// a tail of average ones: the heavy job gets a narrow shard and the light
// jobs pack together. Jobs are never reordered or split, so a shard's work
// is a contiguous, deterministic slice of the input regardless of k.
//
// Passing a reusable out slice keeps repeated splits allocation-free; nil
// is fine.
func SplitWeighted(n, k int, weight func(i int) int64, out [][2]int) [][2]int {
	out = out[:0]
	if n <= 0 {
		return out
	}
	if k > n {
		k = n
	}
	if k <= 1 {
		return append(out, [2]int{0, n})
	}
	var total int64
	for i := 0; i < n; i++ {
		total += weight(i)
	}
	if total <= 0 {
		// Weightless jobs degenerate to the even count split.
		for s := 0; s < k; s++ {
			lo, hi := n*s/k, n*(s+1)/k
			if lo < hi {
				out = append(out, [2]int{lo, hi})
			}
		}
		return out
	}
	// Midpoint rule: a job whose weight midpoint falls in the s-th of k equal
	// weight intervals belongs to shard s. Midpoints are non-decreasing in i,
	// so shards come out contiguous; an outsized job lands alone in its shard
	// because its midpoint consumes the whole interval.
	lo, cum, cur := 0, int64(0), 0
	for i := 0; i < n; i++ {
		w := weight(i)
		s := int((2*cum + w) * int64(k) / (2 * total))
		if s >= k {
			s = k - 1
		}
		if s != cur {
			if lo < i {
				out = append(out, [2]int{lo, i})
				lo = i
			}
			cur = s
		}
		cum += w
	}
	return append(out, [2]int{lo, n})
}

// Run invokes fn(worker, job) for every job index in [0, n) across the
// given number of workers. fn's worker argument lies in [0, workers):
// callers index worker-local accumulators with it and merge after Run
// returns. After the first error, remaining jobs are skipped and Run
// reports that error. workers ≤ 1 runs inline in job order, stopping at
// the first error.
//
//distbound:allow-background context-free convenience over RunCtx; callers hold no context to thread
func Run(n, workers int, fn func(worker, job int) error) error {
	return RunCtx(context.Background(), n, workers, fn)
}

// RunCtx is Run under a context: once ctx is canceled no further job starts,
// in-flight jobs finish (long jobs that want mid-job cancellation watch ctx
// themselves), and RunCtx returns ctx.Err(). An error fn returned before the
// cancellation wins over it, preserving Run's first-error-wins contract.
// RunCtx never returns before every started job has finished, so callers'
// worker-local state is safe to read — and no worker goroutine outlives the
// call.
func RunCtx(ctx context.Context, n, workers int, fn func(worker, job int) error) error {
	done := ctx.Done()
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if done != nil {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	fail := func(err error) {
		mu.Lock()
		if first == nil {
			first = err
		}
		mu.Unlock()
	}
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range next {
				mu.Lock()
				stop := first != nil
				mu.Unlock()
				if stop {
					continue
				}
				if err := fn(w, i); err != nil {
					fail(err)
				}
			}
		}(w)
	}
feed:
	for i := 0; i < n; i++ {
		if done == nil {
			next <- i
			continue
		}
		// Check done non-blockingly first: with a worker parked on <-next
		// AND done already closed, the two-way select below picks uniformly
		// at random and could dispatch a job under a dead context.
		select {
		case <-done:
			break feed
		default:
		}
		select {
		case next <- i:
		case <-done:
			break feed
		}
	}
	close(next)
	wg.Wait()
	if first != nil {
		return first
	}
	if done != nil {
		select {
		case <-done:
			return ctx.Err()
		default:
		}
	}
	return nil
}
