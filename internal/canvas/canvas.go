// Package canvas implements the rasterized-canvas data model and operator
// algebra of §4 of the paper (after Doraiswamy & Freire): a canvas is an
// image whose pixel size is derived from the distance bound, and queries are
// composed from a small set of parallelizable operators — blend, mask and
// affine translation — instead of geometry-specific spatial operators.
//
// The paper executes these operators on the GPU graphics pipeline; here they
// run on a software rasterizer that preserves the pipeline's semantics
// (centroid sampling, per-pixel aggregation in the color channels) and its
// cost model (work proportional to pixels plus primitives, with a maximum
// texture size that forces large canvases to be processed in tiles). That
// cost model — not the absolute GPU constant — is what produces the
// accuracy/time trade-off of Figure 7.
package canvas

import (
	"fmt"
	"math"

	"distbound/internal/geom"
)

// DefaultMaxTextureSize simulates the largest canvas dimension (in pixels)
// that a single "GPU pass" can process; finer distance bounds than the
// texture can hold force multi-pass tiled execution, the effect the paper
// describes for BRJ at a 1 m bound.
const DefaultMaxTextureSize = 4096

// Grid fixes a global pixel lattice: every canvas is a window onto this
// lattice, so canvases compose pixel-exactly regardless of their extents.
type Grid struct {
	// Origin is the lattice point of pixel (0, 0)'s lower-left corner.
	Origin geom.Point
	// PixelSize is the pixel side length. A distance bound eps corresponds
	// to PixelSize = eps/√2 (pixel diagonal = eps), per §2.2.
	PixelSize float64
}

// GridForBound returns a grid whose pixel diagonal equals the distance
// bound eps.
func GridForBound(origin geom.Point, eps float64) Grid {
	return Grid{Origin: origin, PixelSize: eps / math.Sqrt2}
}

// Bound returns the distance bound guaranteed by the grid (the pixel
// diagonal).
func (g Grid) Bound() float64 { return g.PixelSize * math.Sqrt2 }

// PixelOf returns the lattice coordinates of the pixel containing p
// (half-open pixels).
func (g Grid) PixelOf(p geom.Point) (int, int) {
	return int(math.Floor((p.X - g.Origin.X) / g.PixelSize)),
		int(math.Floor((p.Y - g.Origin.Y) / g.PixelSize))
}

// PixelRect returns the spatial extent of lattice pixel (x, y).
func (g Grid) PixelRect(x, y int) geom.Rect {
	minX := g.Origin.X + float64(x)*g.PixelSize
	minY := g.Origin.Y + float64(y)*g.PixelSize
	return geom.Rect{Min: geom.Pt(minX, minY), Max: geom.Pt(minX+g.PixelSize, minY+g.PixelSize)}
}

// PixelCenter returns the center of lattice pixel (x, y) — the sampling
// location of the rasterizer.
func (g Grid) PixelCenter(x, y int) geom.Point {
	return geom.Pt(
		g.Origin.X+(float64(x)+0.5)*g.PixelSize,
		g.Origin.Y+(float64(y)+0.5)*g.PixelSize,
	)
}

// Canvas is a rectangular window [X0, X0+W) × [Y0, Y0+H) onto a Grid with
// one float64 aggregate channel per pixel (the paper packs aggregates into
// the r/g/b/a channels of an off-screen buffer; one float64 channel carries
// the same information).
type Canvas struct {
	G      Grid
	X0, Y0 int
	W, H   int
	Pix    []float64
}

// NewCanvas allocates a zeroed canvas window.
func NewCanvas(g Grid, x0, y0, w, h int) (*Canvas, error) {
	if w < 0 || h < 0 {
		return nil, fmt.Errorf("canvas: negative dimensions %dx%d", w, h)
	}
	return &Canvas{G: g, X0: x0, Y0: y0, W: w, H: h, Pix: make([]float64, w*h)}, nil
}

// CanvasForRect allocates the smallest canvas window covering r.
func CanvasForRect(g Grid, r geom.Rect) (*Canvas, error) {
	if r.IsEmpty() {
		return NewCanvas(g, 0, 0, 0, 0)
	}
	x0, y0 := g.PixelOf(r.Min)
	x1, y1 := g.PixelOf(r.Max)
	return NewCanvas(g, x0, y0, x1-x0+1, y1-y0+1)
}

// Bounds returns the spatial extent of the canvas window.
func (c *Canvas) Bounds() geom.Rect {
	if c.W == 0 || c.H == 0 {
		return geom.EmptyRect()
	}
	return geom.Rect{
		Min: c.G.PixelRect(c.X0, c.Y0).Min,
		Max: c.G.PixelRect(c.X0+c.W-1, c.Y0+c.H-1).Max,
	}
}

// contains reports whether global pixel (gx, gy) is inside the window.
func (c *Canvas) contains(gx, gy int) bool {
	return gx >= c.X0 && gx < c.X0+c.W && gy >= c.Y0 && gy < c.Y0+c.H
}

// idx converts global pixel coordinates to a Pix index; the pixel must be
// inside the window.
func (c *Canvas) idx(gx, gy int) int { return (gy-c.Y0)*c.W + (gx - c.X0) }

// At returns the value at global pixel (gx, gy); pixels outside the window
// read as 0 (the paper's "empty pixel").
func (c *Canvas) At(gx, gy int) float64 {
	if !c.contains(gx, gy) {
		return 0
	}
	return c.Pix[c.idx(gx, gy)]
}

// Set writes the value at global pixel (gx, gy); writes outside the window
// are dropped (off-canvas fragments are clipped, as in the pipeline).
func (c *Canvas) Set(gx, gy int, v float64) {
	if c.contains(gx, gy) {
		c.Pix[c.idx(gx, gy)] = v
	}
}

// Add accumulates into global pixel (gx, gy) with clipping.
func (c *Canvas) Add(gx, gy int, v float64) {
	if c.contains(gx, gy) {
		c.Pix[c.idx(gx, gy)] += v
	}
}

// Clone returns a deep copy.
func (c *Canvas) Clone() *Canvas {
	out := *c
	out.Pix = append([]float64(nil), c.Pix...)
	return &out
}

// Sum returns the sum over all pixels — the final aggregation step.
func (c *Canvas) Sum() float64 {
	var s float64
	for _, v := range c.Pix {
		s += v
	}
	return s
}

// NonZero returns the number of non-empty pixels.
func (c *Canvas) NonZero() int {
	n := 0
	for _, v := range c.Pix {
		if v != 0 {
			n++
		}
	}
	return n
}

// MemoryBytes returns the pixel-buffer footprint.
func (c *Canvas) MemoryBytes() int { return 8 * len(c.Pix) }

// BlendFunc is the ⊙ of the blend operator.
type BlendFunc func(dst, src float64) float64

// Standard blend functions.
var (
	// BlendAdd accumulates values — the partial-aggregate blend of BRJ.
	BlendAdd BlendFunc = func(a, b float64) float64 { return a + b }
	// BlendMul multiplies values — composing a data canvas with a 0/1 mask
	// canvas realizes the mask-then-aggregate step.
	BlendMul BlendFunc = func(a, b float64) float64 { return a * b }
	// BlendMax and BlendMin keep extreme values (MAX/MIN aggregates).
	BlendMax BlendFunc = func(a, b float64) float64 { return math.Max(a, b) }
	BlendMin BlendFunc = func(a, b float64) float64 { return math.Min(a, b) }
	// BlendOver replaces dst by src wherever src is non-empty.
	BlendOver BlendFunc = func(a, b float64) float64 {
		if b != 0 {
			return b
		}
		return a
	}
)

// Blend merges src into dst over the overlap of their windows: dst[p] =
// f(dst[p], src[p]). Pixels of dst outside src are untouched. The canvases
// must share the same Grid.
func Blend(dst, src *Canvas, f BlendFunc) error {
	if dst.G != src.G {
		return fmt.Errorf("canvas: blend across different grids")
	}
	x0 := maxInt(dst.X0, src.X0)
	y0 := maxInt(dst.Y0, src.Y0)
	x1 := minInt(dst.X0+dst.W, src.X0+src.W)
	y1 := minInt(dst.Y0+dst.H, src.Y0+src.H)
	for gy := y0; gy < y1; gy++ {
		di := dst.idx(x0, gy)
		si := src.idx(x0, gy)
		for gx := x0; gx < x1; gx++ {
			dst.Pix[di] = f(dst.Pix[di], src.Pix[si])
			di++
			si++
		}
	}
	return nil
}

// DotSum returns Σ a[p]·b[p] over the overlap of the two windows — the
// blend-with-BlendMul-then-Sum step of the raster join as one read-only
// pass. Neither canvas is written, so a cached region mask can be shared by
// any number of concurrent joins. The iteration order matches Blend
// followed by Sum restricted to the overlap, so results are bit-identical
// to the mutating form.
func DotSum(a, b *Canvas) (float64, error) {
	if a.G != b.G {
		return 0, fmt.Errorf("canvas: dot-sum across different grids")
	}
	x0 := maxInt(a.X0, b.X0)
	y0 := maxInt(a.Y0, b.Y0)
	x1 := minInt(a.X0+a.W, b.X0+b.W)
	y1 := minInt(a.Y0+a.H, b.Y0+b.H)
	var s float64
	for gy := y0; gy < y1; gy++ {
		ai := a.idx(x0, gy)
		bi := b.idx(x0, gy)
		for gx := x0; gx < x1; gx++ {
			s += a.Pix[ai] * b.Pix[bi]
			ai++
			bi++
		}
	}
	return s, nil
}

// Mask zeroes every pixel of c for which pred(mask value at that pixel) is
// false; pixels outside the mask canvas read as 0. This is the M operator of
// Figure 5.
func Mask(c, mask *Canvas, pred func(v float64) bool) error {
	if c.G != mask.G {
		return fmt.Errorf("canvas: mask across different grids")
	}
	for gy := c.Y0; gy < c.Y0+c.H; gy++ {
		i := c.idx(c.X0, gy)
		for gx := c.X0; gx < c.X0+c.W; gx++ {
			if !pred(mask.At(gx, gy)) {
				c.Pix[i] = 0
			}
			i++
		}
	}
	return nil
}

// Translate returns a view-copy of c shifted by (dx, dy) pixels — the affine
// transformation operator restricted to lattice-preserving translations.
func Translate(c *Canvas, dx, dy int) *Canvas {
	out := c.Clone()
	out.X0 += dx
	out.Y0 += dy
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
