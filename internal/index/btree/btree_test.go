package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func refRank(keys []uint64, k uint64) int {
	n := 0
	for _, x := range keys {
		if x < k {
			n++
		}
	}
	return n
}

func TestEmpty(t *testing.T) {
	tr := New()
	if tr.Len() != 0 || tr.Rank(5) != 0 || tr.CountRange(0, 100) != 0 {
		t.Error("empty tree misbehaves")
	}
	if tr.Height() != 1 {
		t.Errorf("empty height = %d", tr.Height())
	}
}

func TestInsertRankSmall(t *testing.T) {
	tr := New()
	keys := []uint64{5, 1, 9, 3, 3, 7, 5, 5}
	for _, k := range keys {
		tr.Insert(k)
	}
	if tr.Len() != len(keys) {
		t.Fatalf("Len = %d", tr.Len())
	}
	for _, k := range []uint64{0, 1, 2, 3, 4, 5, 6, 9, 10} {
		if got, want := tr.Rank(k), refRank(keys, k); got != want {
			t.Errorf("Rank(%d) = %d, want %d", k, got, want)
		}
	}
	if got := tr.CountRange(3, 5); got != 5 {
		t.Errorf("CountRange(3,5) = %d, want 5", got)
	}
	if got := tr.CountRange(5, 3); got != 0 {
		t.Errorf("inverted range = %d", got)
	}
	if got := tr.CountRange(0, ^uint64(0)); got != len(keys) {
		t.Errorf("full range = %d", got)
	}
}

func TestInsertManyMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := New()
	var keys []uint64
	for i := 0; i < 20000; i++ {
		k := rng.Uint64() % 5000
		keys = append(keys, k)
		tr.Insert(k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for trial := 0; trial < 500; trial++ {
		k := rng.Uint64() % 5500
		want := sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
		if got := tr.Rank(k); got != want {
			t.Fatalf("Rank(%d) = %d, want %d", k, got, want)
		}
	}
	if tr.Height() < 2 {
		t.Error("tree did not grow")
	}
}

func TestBulkLoadMatchesInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	keys := make([]uint64, 50000)
	for i := range keys {
		keys[i] = rng.Uint64() % 100000
	}
	bl := BulkLoad(keys)
	if bl.Len() != len(keys) {
		t.Fatalf("BulkLoad Len = %d", bl.Len())
	}
	ins := New()
	for _, k := range keys[:5000] {
		ins.Insert(k)
	}
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for trial := 0; trial < 500; trial++ {
		lo := rng.Uint64() % 100000
		hi := lo + rng.Uint64()%10000
		wantLo := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= lo })
		wantHi := sort.Search(len(sorted), func(i int) bool { return sorted[i] > hi })
		if got := bl.CountRange(lo, hi); got != wantHi-wantLo {
			t.Fatalf("BulkLoad CountRange(%d,%d) = %d, want %d", lo, hi, got, wantHi-wantLo)
		}
	}
}

func TestBulkLoadAfterInsert(t *testing.T) {
	// Inserting into a bulk-loaded tree keeps invariants.
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = uint64(i * 2)
	}
	tr := BulkLoad(keys)
	for i := 0; i < 500; i++ {
		tr.Insert(uint64(i*4 + 1))
	}
	if tr.Len() != 1500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// Rank of 100: evens 0..98 (50 keys) + odds 1,5,...<100 (25 keys) = 75.
	if got := tr.Rank(100); got != 75 {
		t.Errorf("Rank(100) = %d, want 75", got)
	}
}

func TestVisit(t *testing.T) {
	tr := BulkLoad([]uint64{1, 3, 3, 5, 9, 200, 201})
	var got []uint64
	tr.Visit(3, 200, func(k uint64) bool { got = append(got, k); return true })
	want := []uint64{3, 3, 5, 9, 200}
	if len(got) != len(want) {
		t.Fatalf("Visit = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Visit = %v, want %v", got, want)
		}
	}
	n := 0
	tr.Visit(0, 300, func(uint64) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestDuplicatesAcrossLeaves(t *testing.T) {
	// Hammer one value so duplicates straddle many leaves.
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Insert(42)
	}
	for i := 0; i < 100; i++ {
		tr.Insert(41)
		tr.Insert(43)
	}
	if got := tr.Rank(42); got != 100 {
		t.Errorf("Rank(42) = %d, want 100", got)
	}
	if got := tr.CountRange(42, 42); got != 1000 {
		t.Errorf("CountRange(42,42) = %d, want 1000", got)
	}
}

func TestQuickCountRange(t *testing.T) {
	f := func(keys []uint64, lo, hi uint64) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		tr := BulkLoad(keys)
		want := 0
		for _, k := range keys {
			if k >= lo && k <= hi {
				want++
			}
		}
		return tr.CountRange(lo, hi) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMemoryBytes(t *testing.T) {
	tr := BulkLoad(make([]uint64, 10000))
	if tr.MemoryBytes() < 8*10000 {
		t.Errorf("MemoryBytes = %d, implausibly small", tr.MemoryBytes())
	}
}
