// Command tool verifies the cmd/ exemption: commands own their contexts, so
// context.Background() here produces no diagnostic.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
}
