// Package snap models the pointstore.Mutable epoch-swap shape for the
// snapshotdiscipline fixtures.
package snap

type Snapshot struct{ gen int }

type Mutable struct{ cur *Snapshot }

func (m *Mutable) Snapshot() *Snapshot { return m.cur }

func good(m *Mutable) int {
	s := m.Snapshot()
	return s.gen + s.gen
}

func double(m *Mutable) int {
	a := m.Snapshot()
	b := m.Snapshot() // want `second Snapshot\(\) load`
	return a.gen + b.gen
}

func inLoop(m *Mutable) int {
	total := 0
	for i := 0; i < 3; i++ {
		total += m.Snapshot().gen // want `inside a loop`
	}
	return total
}

func inRange(m *Mutable, xs []int) int {
	total := 0
	for range xs {
		total += m.Snapshot().gen // want `inside a loop`
	}
	return total
}

func hoisted(m *Mutable, xs []int) int {
	s := m.Snapshot()
	total := 0
	for range xs {
		total += s.gen
	}
	return total
}

func twoStores(a, b *Mutable) int {
	// Distinct receivers are distinct stores; one load each is the contract.
	return a.Snapshot().gen + b.Snapshot().gen
}

func inClosure(m *Mutable) int {
	s := m.Snapshot()
	f := func() int {
		return m.Snapshot().gen // want `second Snapshot\(\) load`
	}
	return s.gen + f()
}

//distbound:allow-multisnapshot differential generation check
func allowed(m *Mutable) int {
	return m.Snapshot().gen + m.Snapshot().gen
}

//distbound:allow-multisnapshot
func missingReason(m *Mutable) int { // want `requires a reason`
	return m.Snapshot().gen + m.Snapshot().gen
}
