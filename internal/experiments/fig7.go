package experiments

import (
	"fmt"

	"distbound/internal/data"
	"distbound/internal/join"
)

// fig7Bounds is the distance-bound sweep of Figure 7 (meters).
var fig7Bounds = []float64{10, 5, 2, 1}

// Fig7 reproduces Figure 7: the Bounded Raster Join against the accurate
// grid-index baseline while the distance bound varies. The expected shape:
// large speedups at a 10 m bound with sub-percent median count error, and a
// slowdown below the bound at which the canvas resolution exceeds the
// simulated texture limit and the join degrades to multi-pass execution.
func Fig7(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	bounds := data.DowntownBounds()
	pts, _ := data.TaxiPointsIn(cfg.Seed, cfg.NumPoints, bounds)
	ps := join.PointSet{Pts: pts}
	regions := data.NeighborhoodRegions260In(cfg.Seed+13, bounds)

	// Accurate baseline: grid index (1024² cells) + PIP tests.
	gj := join.NewGridJoiner(ps, bounds, 0)
	var exact join.Result
	var err error
	baseTime := timeIt(func() {
		exact, err = gj.Aggregate(regions, join.Count)
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  "Figure 7: Bounded Raster Join (distance bound sweep)",
		Header: []string{"method", "bound", "time", "vs baseline", "median err", "tiles", "canvas px"},
	}
	t.AddRow("GPU-baseline(grid+PIP)", "exact", fmtDur(baseTime), "1.0x", "0%", "-", "-")

	sweep := fig7Bounds
	if cfg.Quick {
		sweep = []float64{10, 5}
	}
	for _, bound := range sweep {
		brj := join.BRJ{Bound: bound, Bounds: bounds}
		var res join.Result
		var stats join.BRJStats
		dur := timeIt(func() {
			res, stats, err = brj.Run(ps, regions, join.Count)
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(
			"BRJ",
			fmt.Sprintf("%gm", bound),
			fmtDur(dur),
			fmt.Sprintf("%.2fx", ratio(baseTime, dur)),
			fmt.Sprintf("%.3f%%", 100*join.MedianRelativeError(res, exact)),
			fmt.Sprintf("%d", stats.NumTiles),
			fmt.Sprintf("%dx%d", stats.GridWidth, stats.GridHeight),
		)
	}
	t.AddNote("%d points, %d regions (29 multi-polygons), downtown extent %.0fm; texture limit %d px",
		len(pts), len(regions), bounds.Width(), 4096)
	t.AddNote("paper shape: ≈8.5x speedup at 10m with ≈0.15%% median error; slower than the baseline at 1m (canvas exceeds the texture limit)")
	return t, nil
}
