package pool

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestRunCoversAllJobs(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		seen := make([]atomic.Int32, 100)
		if err := Run(100, workers, func(w, i int) error {
			seen[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range seen {
			if seen[i].Load() != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, seen[i].Load())
			}
		}
	}
}

func TestRunWorkerLocalIndexing(t *testing.T) {
	const workers = 4
	locals := make([]int, workers)
	if err := Run(200, workers, func(w, i int) error {
		locals[w]++ // safe iff worker ids are really disjoint per goroutine
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range locals {
		total += n
	}
	if total != 200 {
		t.Errorf("worker-local counts sum to %d", total)
	}
}

func TestRunFirstErrorStopsRemainingWork(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	err := Run(1000, 4, func(w, i int) error {
		ran.Add(1)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err %v", err)
	}
	// All feeder sends must have been drained (no deadlock — reaching here
	// proves it) and most jobs skipped after the first failure.
	if ran.Load() == 1000 {
		t.Error("no jobs were skipped after the error")
	}
}

func TestRunSequentialStopsAtError(t *testing.T) {
	boom := errors.New("boom")
	ran := 0
	err := Run(10, 1, func(w, i int) error {
		ran++
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || ran != 4 {
		t.Errorf("ran %d, err %v", ran, err)
	}
}

func TestWorkers(t *testing.T) {
	if Workers(5, 3) != 3 || Workers(2, 100) != 2 || Workers(0, 0) != 1 {
		t.Error("clamping wrong")
	}
	if Workers(-1, 1000) < 1 {
		t.Error("GOMAXPROCS default broken")
	}
}

func TestRunCtxCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		err := RunCtx(ctx, 100, workers, func(_, _ int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if ran.Load() != 0 {
			t.Errorf("workers=%d: %d jobs ran under a pre-canceled context", workers, ran.Load())
		}
	}
}

func TestRunCtxCancelMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := RunCtx(ctx, 1000, 4, func(_, job int) error {
		if ran.Add(1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The feeder stops on cancel; only jobs already dispatched may finish.
	if n := ran.Load(); n >= 1000 {
		t.Errorf("all %d jobs ran despite mid-run cancellation", n)
	}
}

func TestRunCtxFnErrorWinsOverCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	boom := errors.New("boom")
	err := RunCtx(ctx, 100, 4, func(_, job int) error {
		if job == 0 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the fn error to win", err)
	}
}

func TestRunCtxNoCancelBehavesLikeRun(t *testing.T) {
	var ran atomic.Int32
	if err := RunCtx(context.Background(), 50, 3, func(_, _ int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 50 {
		t.Errorf("ran %d of 50 jobs", ran.Load())
	}
}
