// The engine's query-result cache: warm repeated Do/DoBatch requests over a
// resident dataset skip planning, snapshotting and folding entirely. Heavy
// traffic repeats itself — the same dashboards re-issue the same region sets
// and bounds against a dataset that mutates slowly — so the cache keys one
// executed Response by (store identity, mutation epoch, bound, aggregate
// set, strategy override) and serves copies of it until any mutation bumps
// the dataset's epoch, making every prior key unreachable. There is no
// invalidation scan and no lock on the read path beyond one cache-shard
// mutex: invalidation is the epoch moving.
package distbound

import (
	"math"
	"sync/atomic"
	"time"

	"distbound/internal/cache"
	"distbound/internal/planner"
	"distbound/internal/pointstore"
)

// DefaultResultCacheCapacity bounds the query-result cache. Entries are one
// deep-copied result column set per distinct (dataset, epoch, bound, agg
// set, override) — a few hundred bytes per region set of ordinary width —
// so the default is sized for request diversity, not memory pressure.
// Resize with SetResultCacheCapacity; 0 disables result caching.
const DefaultResultCacheCapacity = 1024

// resultKey identifies one cacheable request shape against one state of one
// dataset. The store pointer (not the name) is the dataset identity, so an
// entry can never be served to a same-named successor; epoch is the store's
// mutation counter, so any Append/Delete/Compact strands every prior key.
// The key deliberately excludes Workers (results are worker-count
// independent by the fold-order contract) and Repetitions (it steers the
// planner's amortization, never the answer).
type resultKey struct {
	src   *pointstore.Mutable
	epoch uint64
	bound float64
	aggs  uint64 // nibble-packed aggregate set, see packAggs
	strat int8   // forced Strategy, or -1 for the planner's choice
}

// packAggs encodes an aggregate set order-preservingly into one uint64,
// 4 bits per aggregate (offset by 1 so trailing zero nibbles encode the
// length). Sets longer than 16 aggregates — or carrying an aggregate that
// does not fit a nibble — report !ok and bypass the cache.
//
//distbound:noalloc
func packAggs(aggs []Agg) (uint64, bool) {
	if len(aggs) > 16 {
		return 0, false
	}
	var packed uint64
	for i, a := range aggs {
		if a < 0 || a > 14 {
			return 0, false
		}
		packed |= uint64(a+1) << (4 * i)
	}
	return packed, true
}

// resultCacheKey computes the cache key for a normalized request, reporting
// ok=false for shapes the cache does not serve: ad-hoc point-set targets
// (no store identity to key on), Explain requests (the rendering is not
// cached), NaN bounds (NaN keys can never be found again), and oversized
// aggregate sets. The epoch is read here — before execution — which is what
// makes a later hit linearizable: the cached entry's data is at least as new
// as the epoch in its key, so a request hitting that key observes a state no
// older than one it could have observed by executing.
//
//distbound:noalloc
func resultCacheKey(req Request) (resultKey, bool) {
	if req.Dataset == nil || req.Explain || math.IsNaN(req.Bound) {
		return resultKey{}, false
	}
	packed, ok := packAggs(req.Aggs)
	if !ok {
		return resultKey{}, false
	}
	k := resultKey{
		src:   req.Dataset.src,
		epoch: req.Dataset.src.Epoch(),
		bound: req.Bound,
		aggs:  packed,
		strat: -1,
	}
	if req.Strategy != nil {
		k.strat = int8(*req.Strategy)
	}
	return k, true
}

// cachedResponse is one resident entry: a refcounted deep copy of an
// executed Response, fully decoupled from the sync.Pool scratch that backed
// the original. The cache itself holds one reference; every hit handed out
// holds another until its Release. Releasing a cached Response is therefore
// a refcount decrement — never a pool return, so the double-return class of
// bugs cannot exist on this path — and the memory is reclaimed by the
// collector once the last holder lets go.
type cachedResponse struct {
	results      []Result
	strategy     Strategy
	plan         Plan
	rangesProbed int
	deltaProbed  int
	refs         atomic.Int64
}

// newCachedResponse deep-copies an executed response: fresh result columns
// and a cloned plan cost table, sharing nothing with resp's scratch.
func newCachedResponse(resp *Response) *cachedResponse {
	c := &cachedResponse{
		strategy:     resp.Strategy,
		plan:         resp.Plan,
		rangesProbed: resp.RangesProbed,
		deltaProbed:  resp.DeltaProbed,
	}
	c.refs.Store(1) // the cache's own reference
	c.results = make([]Result, len(resp.Results))
	for i, r := range resp.Results {
		cr := Result{Agg: r.Agg, Counts: append([]int64(nil), r.Counts...)}
		if r.Sums != nil {
			cr.Sums = append([]float64(nil), r.Sums...)
		}
		if r.Extremes != nil {
			cr.Extremes = append([]float64(nil), r.Extremes...)
		}
		c.results[i] = cr
	}
	if resp.Plan.Costs != nil {
		costs := make(map[Strategy]planner.Cost, len(resp.Plan.Costs))
		for s, cost := range resp.Plan.Costs {
			costs[s] = cost
		}
		c.plan.Costs = costs
	}
	return c
}

// respond materializes one hit: a by-value Response sharing the entry's
// read-only columns, holding one reference until its Release. Allocation-
// free.
//
//distbound:noalloc
func (c *cachedResponse) respond(start time.Time) Response {
	c.refs.Add(1)
	return Response{
		Results:      c.results,
		Strategy:     c.strategy,
		Plan:         c.plan,
		Wall:         time.Since(start),
		RangesProbed: c.rangesProbed,
		DeltaProbed:  c.deltaProbed,
		cached:       c,
	}
}

// release drops one reference. The entry is garbage once every holder (the
// cache included) has released; a negative count means a Response was
// released twice, which the Release contract forbids.
//
//distbound:noalloc
func (c *cachedResponse) release() {
	if c.refs.Add(-1) < 0 {
		panic("distbound: cached Response released more than once")
	}
}

// newResultCache builds the engine's result cache; eviction — by capacity,
// replacement, or disabling — drops the cache's reference.
func newResultCache() *cache.ShardedLRU[resultKey, *cachedResponse] {
	return cache.NewShardedLRU[resultKey, *cachedResponse](
		DefaultResultCacheCapacity,
		func(c *cachedResponse) { c.release() },
	)
}

// SetResultCacheCapacity bounds how many distinct query results stay
// resident (default DefaultResultCacheCapacity); least recently used
// entries are evicted. 0 disables result caching and drops every resident
// entry — Responses already handed out stay valid, they hold their own
// references.
func (e *Engine) SetResultCacheCapacity(n int) {
	e.results.SetCapacity(n)
}

// ResultCacheStats reports the query-result cache's counters: Hits and
// Misses count cacheable Do/DoBatch requests served warm vs executed,
// Evictions counts entries dropped by the capacity bound or replaced by a
// racing insert. (Builds and Coalesced stay zero — result entries are
// by-products of execution, never built by the cache.) The index-artifact
// caches report separately through CacheStats.
func (e *Engine) ResultCacheStats() cache.Stats {
	return e.results.Stats()
}
