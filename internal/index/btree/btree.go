// Package btree implements an in-memory B+-tree over uint64 keys with
// subtree counts, the alternative physical representation for linearized
// cells that §3 of the paper mentions alongside the sorted array. Subtree
// counts give O(log n) rank queries, so COUNT over a key range needs two
// descents — the same interface the sorted column and the learned index
// expose.
package btree

import "sort"

// degree is the maximum number of keys per node; nodes split at degree and
// hold at least degree/2 keys (except the root).
const degree = 64

type node struct {
	keys     []uint64
	children []*node // nil for leaves
	counts   []int   // per-child subtree key counts (internal nodes)
	next     *node   // leaf-level chain for range scans
}

func (n *node) leaf() bool { return n.children == nil }

// Tree is a B+-tree multiset of uint64 keys.
type Tree struct {
	root *node
	size int
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{}}
}

// BulkLoad builds a tree from keys (sorted internally) by packing leaves
// left to right, the standard bottom-up construction.
func BulkLoad(keys []uint64) *Tree {
	ks := make([]uint64, len(keys))
	copy(ks, keys)
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })

	t := &Tree{size: len(ks)}
	if len(ks) == 0 {
		t.root = &node{}
		return t
	}
	// Pack leaves.
	var level []*node
	var prev *node
	for i := 0; i < len(ks); i += degree {
		end := i + degree
		if end > len(ks) {
			end = len(ks)
		}
		n := &node{keys: append([]uint64(nil), ks[i:end]...)}
		if prev != nil {
			prev.next = n
		}
		prev = n
		level = append(level, n)
	}
	// Build internal levels.
	for len(level) > 1 {
		var up []*node
		for i := 0; i < len(level); i += degree {
			end := i + degree
			if end > len(level) {
				end = len(level)
			}
			parent := &node{}
			for j := i; j < end; j++ {
				child := level[j]
				if j > i {
					parent.keys = append(parent.keys, subtreeMin(child))
				}
				parent.children = append(parent.children, child)
				parent.counts = append(parent.counts, subtreeCount(child))
			}
			up = append(up, parent)
		}
		level = up
	}
	t.root = level[0]
	return t
}

func subtreeMin(n *node) uint64 {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.keys[0]
}

func subtreeCount(n *node) int {
	if n.leaf() {
		return len(n.keys)
	}
	s := 0
	for _, c := range n.counts {
		s += c
	}
	return s
}

// Len returns the number of keys in the tree.
func (t *Tree) Len() int { return t.size }

// Insert adds a key (duplicates allowed).
func (t *Tree) Insert(key uint64) {
	t.size++
	mid, right := t.insert(t.root, key)
	if right != nil {
		old := t.root
		t.root = &node{
			keys:     []uint64{mid},
			children: []*node{old, right},
			counts:   []int{subtreeCount(old), subtreeCount(right)},
		}
	}
}

// insert adds key under n and returns a separator and sibling when n splits.
func (t *Tree) insert(n *node, key uint64) (uint64, *node) {
	if n.leaf() {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		if len(n.keys) <= degree {
			return 0, nil
		}
		// Split leaf.
		mid := len(n.keys) / 2
		right := &node{keys: append([]uint64(nil), n.keys[mid:]...), next: n.next}
		n.keys = n.keys[:mid]
		n.next = right
		return right.keys[0], right
	}
	// Internal: find the child to descend into.
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
	n.counts[i]++
	sep, right := t.insert(n.children[i], key)
	if right == nil {
		return 0, nil
	}
	// Child split: fix the child's count and link the sibling.
	n.counts[i] = subtreeCount(n.children[i])
	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = sep
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
	n.counts = append(n.counts, 0)
	copy(n.counts[i+2:], n.counts[i+1:])
	n.counts[i+1] = subtreeCount(right)
	if len(n.children) <= degree {
		return 0, nil
	}
	// Split internal node.
	mid := len(n.keys) / 2
	sepUp := n.keys[mid]
	rightNode := &node{
		keys:     append([]uint64(nil), n.keys[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
		counts:   append([]int(nil), n.counts[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	n.counts = n.counts[:mid+1]
	return sepUp, rightNode
}

// Rank returns the number of keys strictly less than key.
//
// Separators equal the minimum of their right child, so descending into the
// first child whose separator is ≥ key guarantees that every subtree to the
// left holds only keys < key (they precede a separator < key) and every
// subtree to the right holds only keys ≥ key — duplicates that straddle leaf
// boundaries are handled correctly.
func (t *Tree) Rank(key uint64) int {
	rank := 0
	n := t.root
	for !n.leaf() {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
		for j := 0; j < i; j++ {
			rank += n.counts[j]
		}
		n = n.children[i]
	}
	return rank + sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
}

// CountRange returns the number of keys in the inclusive range [lo, hi].
func (t *Tree) CountRange(lo, hi uint64) int {
	if lo > hi {
		return 0
	}
	if hi == ^uint64(0) {
		return t.size - t.Rank(lo)
	}
	return t.Rank(hi+1) - t.Rank(lo)
}

// Visit calls fn with every key in [lo, hi] in order, stopping early when fn
// returns false, using the leaf chain.
func (t *Tree) Visit(lo, hi uint64, fn func(key uint64) bool) {
	n := t.root
	for !n.leaf() {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= lo })
		n = n.children[i]
	}
	for ; n != nil; n = n.next {
		for _, k := range n.keys {
			if k < lo {
				continue
			}
			if k > hi {
				return
			}
			if !fn(k) {
				return
			}
		}
	}
}

// Height returns the tree height (1 for a lone leaf).
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf(); n = n.children[0] {
		h++
	}
	return h
}

// MemoryBytes estimates the tree footprint.
func (t *Tree) MemoryBytes() int {
	var walk func(n *node) int
	walk = func(n *node) int {
		b := 8*len(n.keys) + 8*len(n.children) + 8*len(n.counts) + 48
		for _, c := range n.children {
			b += walk(c)
		}
		return b
	}
	return walk(t.root)
}
