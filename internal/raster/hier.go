package raster

import (
	"container/heap"
	"fmt"

	"distbound/internal/geom"
	"distbound/internal/sfc"
)

// Hierarchical computes the hierarchical raster (HR) approximation of a
// region satisfying the distance bound eps (Figure 1(c), §2.2): interior
// cells are emitted as coarse as possible, and boundary cells are refined
// until their diagonal is at most eps, guaranteeing d_H(region, cells) ≤ eps
// for Conservative mode.
//
// The returned approximation's boundary cells all sit at the level
// Domain.LevelForBound(eps). An error is returned when eps is so small that
// even MaxLevel cells cannot honor it.
func Hierarchical(rg geom.Region, d sfc.Domain, curve sfc.Curve, eps float64, mode Mode) (*Approximation, error) {
	level := d.LevelForBound(eps)
	if eps > 0 && d.CellDiagonal(level) > eps {
		return nil, fmt.Errorf("raster: bound %g m needs cells finer than MaxLevel (diagonal %g m)",
			eps, d.CellDiagonal(sfc.MaxLevel))
	}
	return hierarchicalAtLevel(rg, d, curve, level, mode), nil
}

// HierarchicalAtLevel is Hierarchical with the refinement level given
// directly instead of derived from a distance bound.
func HierarchicalAtLevel(rg geom.Region, d sfc.Domain, curve sfc.Curve, level int, mode Mode) *Approximation {
	return hierarchicalAtLevel(rg, d, curve, level, mode)
}

func hierarchicalAtLevel(rg geom.Region, d sfc.Domain, curve sfc.Curve, maxLevel int, mode Mode) *Approximation {
	a := &Approximation{Domain: d, Curve: curve}
	cl := newClassifier(rg, d, curve)

	var rec func(id sfc.CellID, cand []int32)
	rec = func(id sfc.CellID, cand []int32) {
		rel, sub := cl.relateCell(id, cand)
		switch rel {
		case geom.RectOutside:
			return
		case geom.RectInside:
			a.Interior = append(a.Interior, id)
		case geom.RectPartial:
			if id.Level() >= maxLevel {
				if mode == Centroid && !rg.ContainsPoint(d.CellIDRect(curve, id).Center()) {
					return
				}
				a.Boundary = append(a.Boundary, id)
				return
			}
			for _, ch := range id.Children() {
				rec(ch, sub)
			}
		}
	}
	rec(sfc.FromPosLevel(0, 0), cl.rootCand())
	sortCells(a.Interior)
	sortCells(a.Boundary)
	return a
}

// coverItem is a priority-queue entry for budgeted covering.
type coverItem struct {
	id   sfc.CellID
	cand []int32
}

// coverQueue orders partial cells coarsest-first so the budget is spent
// refining the largest remaining cells.
type coverQueue []coverItem

func (q coverQueue) Len() int           { return len(q) }
func (q coverQueue) Less(i, j int) bool { return q[i].id.Level() < q[j].id.Level() }
func (q coverQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *coverQueue) Push(x any)        { *q = append(*q, x.(coverItem)) }
func (q *coverQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// CoverBudget computes a hierarchical cover of the region using at most
// maxCells cells: the precision knob of Figure 4, where query polygons are
// approximated with 32, 128 or 512 cells. The cover is conservative (it
// contains the region); its achieved distance bound is reported by
// MaxCellDiagonal and shrinks as the budget grows.
//
// The refinement strategy follows the standard region-coverer approach:
// repeatedly split the coarsest partial cell while the expansion still fits
// in the budget.
func CoverBudget(rg geom.Region, d sfc.Domain, curve sfc.Curve, maxCells int) *Approximation {
	if maxCells < 1 {
		maxCells = 1
	}
	a := &Approximation{Domain: d, Curve: curve}
	cl := newClassifier(rg, d, curve)

	q := &coverQueue{}
	push := func(id sfc.CellID, cand []int32) bool {
		rel, sub := cl.relateCell(id, cand)
		switch rel {
		case geom.RectInside:
			a.Interior = append(a.Interior, id)
			return true
		case geom.RectPartial:
			heap.Push(q, coverItem{id: id, cand: sub})
			return true
		}
		return false
	}
	push(sfc.FromPosLevel(0, 0), cl.rootCand())

	for q.Len() > 0 {
		// Splitting one cell replaces it with up to 4 entries; stop when the
		// worst case would blow the budget or the cell cannot be refined.
		if a.NumCells()+q.Len()+3 > maxCells || (*q)[0].id.Level() >= sfc.MaxLevel {
			break
		}
		it := heap.Pop(q).(coverItem)
		for _, ch := range it.id.Children() {
			push(ch, it.cand)
		}
	}
	// Remaining partial cells are emitted as boundary cells.
	for _, it := range *q {
		a.Boundary = append(a.Boundary, it.id)
	}
	sortCells(a.Interior)
	sortCells(a.Boundary)
	return a
}
