// Differential crash-recovery sweeps: a scripted mutation stream runs
// against a fault-injecting filesystem, and for EVERY filesystem call — and
// several torn-write variants of it — the process "dies" there, recovers,
// and must land on a state bit-identical to a valid oracle state (the one
// before or the one after the interrupted operation), never a torn hybrid.
//
// The file is an external test: errorfs imports persist, so driving persist
// through it from an in-package test would cycle.
package persist_test

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"distbound/internal/geom"
	"distbound/internal/pointstore"
	"distbound/internal/pointstore/persist"
	"distbound/internal/sfc"
	"distbound/internal/testutil/errorfs"
)

const crashDir = "db"

var crashDom = sfc.Domain{Origin: geom.Point{}, Size: 1024}

// crashPoints returns the deterministic fixture relation; index 5 lies
// outside the domain, so the construction-time dropped count is non-zero
// and must survive persistence.
func crashPoints() ([]geom.Point, []float64) {
	n := 64
	pts := make([]geom.Point, n)
	ws := make([]float64, n)
	seed := uint64(0x2545f4914f6cdd1d)
	rnd := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>11) / float64(uint64(1)<<53)
	}
	for i := range pts {
		pts[i] = geom.Point{X: float64(int(rnd()*8192)) / 8, Y: float64(int(rnd()*8192)) / 8}
		ws[i] = float64(int(rnd()*512)) / 16
	}
	pts[5] = geom.Point{X: -64, Y: -64}
	return pts, ws
}

func freshCrashMutable(t testing.TB) *pointstore.Mutable {
	t.Helper()
	pts, ws := crashPoints()
	m, err := pointstore.NewMutable(pts[:48], ws[:48], crashDom, sfc.Hilbert{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// scriptOp is one logical operation of the crash script.
type scriptOp struct {
	kind byte // 'a' append, 'd' delete, 'c' checkpoint
	pts  []geom.Point
	ws   []float64
	ids  []uint64
}

// crashScript exercises every mutation shape around two checkpoints, ending
// with an un-checkpointed WAL tail.
func crashScript() []scriptOp {
	pts, ws := crashPoints()
	return []scriptOp{
		{kind: 'a', pts: pts[48:53], ws: ws[48:53]}, // ids 48..52
		{kind: 'd', ids: []uint64{1, 3, 49}},
		{kind: 'c'},
		{kind: 'a', pts: pts[53:57], ws: ws[53:57]}, // ids 53..56
		{kind: 'd', ids: []uint64{2, 53}},
		{kind: 'a', pts: pts[57:60], ws: ws[57:60]}, // ids 57..59
		{kind: 'c'},
		{kind: 'd', ids: []uint64{57, 0}},
		{kind: 'a', pts: pts[60:64], ws: ws[60:64]}, // ids 60..63
	}
}

// lastCheckpointIndex returns the script index of the final checkpoint op.
func lastCheckpointIndex(scr []scriptOp) int {
	last := -1
	for i, op := range scr {
		if op.kind == 'c' {
			last = i
		}
	}
	return last
}

func applyDurable(d *persist.Durable, op scriptOp) error {
	switch op.kind {
	case 'a':
		_, err := d.Append(op.pts, op.ws)
		return err
	case 'd':
		_, err := d.Delete(op.ids...)
		return err
	default:
		return d.Checkpoint()
	}
}

func applyOracle(t testing.TB, m *pointstore.Mutable, op scriptOp) {
	t.Helper()
	switch op.kind {
	case 'a':
		if _, err := m.Append(op.pts, op.ws); err != nil {
			t.Fatal(err)
		}
	case 'd':
		m.Delete(op.ids...)
	}
}

// canon is a store's canonical (compacted) state, every column copied out.
type canon struct {
	keys, ids              []uint64
	pts                    []geom.Point
	ws, prefix, bmin, bmax []float64
	nextID                 uint64
	dropped                int
}

func canonicalize(m *pointstore.Mutable) canon {
	m.Compact()
	c := m.Snapshot().BaseColumns()
	return canon{
		keys: append([]uint64(nil), c.Keys...),
		ids:  append([]uint64(nil), c.IDs...),
		pts:  append([]geom.Point(nil), c.Pts...),
		ws:   cloneF(c.Weights), prefix: cloneF(c.Prefix),
		bmin: cloneF(c.BlockMin), bmax: cloneF(c.BlockMax),
		nextID:  m.NextID(),
		dropped: m.Dropped(),
	}
}

func cloneF(s []float64) []float64 {
	if s == nil {
		return nil
	}
	return append([]float64(nil), s...)
}

// equalCanon compares bit-for-bit: float columns via Float64bits, so even a
// sign-of-zero divergence between recovery and oracle would be caught.
func equalCanon(a, b canon) bool {
	if len(a.keys) != len(b.keys) || a.nextID != b.nextID || a.dropped != b.dropped {
		return false
	}
	for i := range a.keys {
		if a.keys[i] != b.keys[i] || a.ids[i] != b.ids[i] {
			return false
		}
		if math.Float64bits(a.pts[i].X) != math.Float64bits(b.pts[i].X) ||
			math.Float64bits(a.pts[i].Y) != math.Float64bits(b.pts[i].Y) {
			return false
		}
	}
	for _, col := range [][2][]float64{{a.ws, b.ws}, {a.prefix, b.prefix}, {a.bmin, b.bmin}, {a.bmax, b.bmax}} {
		if (col[0] == nil) != (col[1] == nil) || len(col[0]) != len(col[1]) {
			return false
		}
		for i := range col[0] {
			if math.Float64bits(col[0][i]) != math.Float64bits(col[1][i]) {
				return false
			}
		}
	}
	return true
}

// oracleStates returns states[j] = the canonical state after Create plus
// the first j script ops, for j in [0, len(scr)].
func oracleStates(t testing.TB, scr []scriptOp) []canon {
	t.Helper()
	states := make([]canon, len(scr)+1)
	for j := 0; j <= len(scr); j++ {
		m := freshCrashMutable(t)
		for _, op := range scr[:j] {
			applyOracle(t, m, op)
		}
		states[j] = canonicalize(m)
	}
	return states
}

// runScript creates the durable store on fs and applies the script,
// returning the durable handle and the 1-based index of the first logical
// op that errored (0 = Create failed, -1 = everything succeeded).
func runScript(t testing.TB, fs *errorfs.FS, scr []scriptOp) (*persist.Durable, int) {
	t.Helper()
	m := freshCrashMutable(t)
	d, err := persist.Create(crashDir, m, persist.Options{FS: fs})
	if err != nil {
		return nil, 0
	}
	for j, op := range scr {
		if err := applyDurable(d, op); err != nil {
			return d, j + 1
		}
	}
	return d, -1
}

// TestCrashRecoverySweep is the atomicity acceptance criterion: for every
// filesystem call the script performs, and for plain-fail plus four torn
// payload lengths, kill the filesystem there, recover, reopen, and require
// a state bit-identical to the oracle state just before or just after the
// interrupted logical op. An op that was acknowledged before the crash must
// be fully present (the run past the last op allows only the final state).
func TestCrashRecoverySweep(t *testing.T) {
	scr := crashScript()
	states := oracleStates(t, scr)

	dry := errorfs.New()
	if _, failed := runScript(t, dry, scr); failed != -1 {
		t.Fatalf("dry run failed at logical op %d", failed)
	}
	total := dry.Ops()
	if total < 40 {
		t.Fatalf("suspiciously few filesystem calls: %d", total)
	}

	snapPath := filepath.Join(crashDir, persist.SnapshotName)
	for k := 0; k < total; k++ {
		for _, keep := range []int{-1, 0, 1, 7, 1 << 20} {
			fs := errorfs.New()
			if keep < 0 {
				fs.CrashAt(k)
			} else {
				fs.CrashAtTorn(k, keep)
			}
			_, failedAt := runScript(t, fs, scr)
			fs.Recover()

			d2, err := persist.Open(crashDir, persist.Options{FS: fs})
			if err != nil {
				if fs.Data(snapPath) != nil {
					t.Fatalf("crash at call %d (keep %d): snapshot exists but recovery failed: %v\ntrace tail: %v",
						k, keep, err, tail(fs.Trace(), 6))
				}
				if failedAt != 0 {
					t.Fatalf("crash at call %d (keep %d): script reached op %d yet no snapshot survived",
						k, keep, failedAt)
				}
				continue
			}
			got := canonicalize(d2.Mutable())
			switch {
			case failedAt == -1:
				if !equalCanon(got, states[len(scr)]) {
					t.Fatalf("crash at call %d (keep %d) during post-acknowledge cleanup: recovered state lost acknowledged ops", k, keep)
				}
			case failedAt == 0:
				// Create itself was interrupted after the snapshot became
				// visible: only the initial state may have been captured.
				if !equalCanon(got, states[0]) {
					t.Fatalf("crash at call %d (keep %d) during Create: snapshot holds a non-initial state", k, keep)
				}
			case equalCanon(got, states[failedAt-1]) || equalCanon(got, states[failedAt]):
				// pre-op or post-op oracle state: exactly what atomicity allows
			default:
				t.Fatalf("crash at call %d (keep %d), logical op %d: recovered a state matching neither the pre-op nor post-op oracle\ntrace tail: %v",
					k, keep, failedAt, tail(fs.Trace(), 6))
			}
		}
	}
}

// TestFailThenContinueThenCrashSweep covers the window the crash sweep
// cannot: a filesystem call fails CLEANLY — the process survives and keeps
// going — the store keeps acknowledging whatever it still accepts, and only
// later does the machine die. For every call index the script performs,
// recovery after that late crash must land exactly on the acknowledged
// state: every mutation acknowledged after the injected failure present,
// every refused one absent. This is the regression gate for the checkpoint
// directory-sync window, where continuing to log into a superseded
// generation would silently drop acknowledged mutations.
func TestFailThenContinueThenCrashSweep(t *testing.T) {
	scr := crashScript()
	states := oracleStates(t, scr)

	dry := errorfs.New()
	if _, failed := runScript(t, dry, scr); failed != -1 {
		t.Fatalf("dry run failed at logical op %d", failed)
	}
	total := dry.Ops()

	for k := 0; k < total; k++ {
		fs := errorfs.New()
		fs.FailAt(k)
		m := freshCrashMutable(t)
		d, err := persist.Create(crashDir, m, persist.Options{FS: fs})
		if err != nil {
			continue // Create absorbed the failure; nothing was acknowledged
		}
		// Apply every op regardless of earlier failures, tracking the last
		// acknowledged one. A failed mutation wedges the store (everything
		// later is refused), and a failed checkpoint changes no logical
		// state, so the acknowledged state is always an oracle prefix.
		ack := 0
		for j, op := range scr {
			if err := applyDurable(d, op); err == nil {
				ack = j + 1
			}
		}
		fs.Crash()
		fs.Recover()
		d2, err := persist.Open(crashDir, persist.Options{FS: fs})
		if err != nil {
			t.Fatalf("fail at call %d: reopen after the late crash failed: %v\ntrace tail: %v",
				k, err, tail(fs.Trace(), 6))
		}
		if !equalCanon(canonicalize(d2.Mutable()), states[ack]) {
			t.Fatalf("fail at call %d: recovered state diverges from the acknowledged prefix (%d ops)\ntrace tail: %v",
				k, ack, tail(fs.Trace(), 6))
		}
	}
}

func tail(s []string, n int) []string {
	if len(s) <= n {
		return s
	}
	return s[len(s)-n:]
}

// TestWALTruncationEveryByteOffset plants the final snapshot plus every
// prefix of the final WAL — all byte offsets b in [0, len] — and requires
// recovery to replay exactly the complete records within the prefix:
// recovered state == oracle state at (last checkpoint + records replayed),
// with the replayed count nondecreasing in b and complete at b = len.
func TestWALTruncationEveryByteOffset(t *testing.T) {
	scr := crashScript()
	states := oracleStates(t, scr)
	ckpt := lastCheckpointIndex(scr)
	tailOps := len(scr) - ckpt - 1

	fs := errorfs.New()
	d, failed := runScript(t, fs, scr)
	if failed != -1 {
		t.Fatalf("clean run failed at logical op %d", failed)
	}
	gen := d.Stats().Generation
	snap := fs.Data(filepath.Join(crashDir, persist.SnapshotName))
	wal := fs.Data(filepath.Join(crashDir, persist.WALName(gen)))
	if snap == nil || wal == nil {
		t.Fatal("clean run left no snapshot or log")
	}

	prevRecs := int64(-1)
	for b := 0; b <= len(wal); b++ {
		fs2 := errorfs.New()
		fs2.SetData(filepath.Join(crashDir, persist.SnapshotName), snap)
		fs2.SetData(filepath.Join(crashDir, persist.WALName(gen)), wal[:b])
		d2, err := persist.Open(crashDir, persist.Options{FS: fs2})
		if err != nil {
			t.Fatalf("offset %d: recovery failed: %v", b, err)
		}
		recs := int64(d2.Stats().WALRecords)
		if recs < prevRecs {
			t.Fatalf("offset %d: replayed records fell from %d to %d", b, prevRecs, recs)
		}
		prevRecs = recs
		idx := ckpt + 1 + int(recs)
		if idx >= len(states) {
			t.Fatalf("offset %d: replayed %d records, more than the %d tail ops", b, recs, tailOps)
		}
		if !equalCanon(canonicalize(d2.Mutable()), states[idx]) {
			t.Fatalf("offset %d: recovered state does not match oracle after %d tail records", b, recs)
		}
	}
	if prevRecs != int64(tailOps) {
		t.Fatalf("full log replayed %d records, want %d", prevRecs, tailOps)
	}
}

// TestInjectedFailureSemantics pins the wedge contract: a WAL write failure
// wedges the store (sticky Err, mutations refused), while a checkpoint
// failure is recorded, non-wedging, and retryable.
func TestInjectedFailureSemantics(t *testing.T) {
	t.Run("wal-failure-wedges", func(t *testing.T) {
		fs := errorfs.New()
		d, failed := runScript(t, fs, nil)
		if failed != -1 {
			t.Fatalf("create failed at %d", failed)
		}
		pts, ws := crashPoints()
		fs.FailAt(fs.Ops()) // the very next call: the WAL record write
		if _, err := d.Append(pts[48:49], ws[48:49]); err == nil {
			t.Fatal("append with failing log write succeeded")
		}
		if st := d.Stats(); st.Err == nil {
			t.Fatal("lost log record did not wedge the store")
		}
		if _, err := d.Append(pts[49:50], ws[49:50]); err == nil {
			t.Fatal("wedged store accepted a mutation")
		}
		if err := d.Checkpoint(); err == nil {
			t.Fatal("wedged store accepted a checkpoint")
		}
	})
	t.Run("checkpoint-failure-retries", func(t *testing.T) {
		fs := errorfs.New()
		d, failed := runScript(t, fs, nil)
		if failed != -1 {
			t.Fatalf("create failed at %d", failed)
		}
		pts, ws := crashPoints()
		if _, err := d.Append(pts[48:52], ws[48:52]); err != nil {
			t.Fatal(err)
		}
		fs.FailAt(fs.Ops()) // the very next call: the temp snapshot create
		if err := d.Checkpoint(); err == nil {
			t.Fatal("checkpoint with failing temp create succeeded")
		}
		st := d.Stats()
		if st.CheckpointErr == nil || st.Err != nil {
			t.Fatalf("checkpoint failure misfiled: %+v", st)
		}
		if _, err := d.Append(pts[52:53], ws[52:53]); err != nil {
			t.Fatalf("non-wedging failure refused a mutation: %v", err)
		}
		if err := d.Checkpoint(); err != nil {
			t.Fatalf("checkpoint retry failed: %v", err)
		}
		if st := d.Stats(); st.CheckpointErr != nil || st.WALRecords != 0 {
			t.Fatalf("retry did not clear the failure: %+v", st)
		}
	})
	t.Run("dirsync-failure-after-rename-wedges", func(t *testing.T) {
		pts, ws := crashPoints()
		// Dry-run the same sequence to locate the call index of the
		// directory sync inside the checkpoint that follows one append.
		probe := errorfs.New()
		d0, failed := runScript(t, probe, nil)
		if failed != -1 {
			t.Fatalf("create failed at %d", failed)
		}
		if _, err := d0.Append(pts[48:52], ws[48:52]); err != nil {
			t.Fatal(err)
		}
		mark := probe.Ops()
		if err := d0.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		syncIdx := -1
		for i, line := range probe.Trace()[mark:] {
			if strings.HasPrefix(line, "syncdir ") {
				syncIdx = mark + i
				break
			}
		}
		if syncIdx < 0 {
			t.Fatal("checkpoint trace has no directory sync")
		}

		fs := errorfs.New()
		d, failed := runScript(t, fs, nil)
		if failed != -1 {
			t.Fatalf("create failed at %d", failed)
		}
		if _, err := d.Append(pts[48:52], ws[48:52]); err != nil {
			t.Fatal(err)
		}
		fs.FailAt(syncIdx)
		if err := d.Checkpoint(); err == nil {
			t.Fatal("checkpoint with failing directory sync succeeded")
		}
		st := d.Stats()
		if st.Err == nil || st.CheckpointErr == nil {
			t.Fatalf("post-rename directory-sync failure must wedge: %+v", st)
		}
		// Fail, then continue: the wedged store must refuse the mutation
		// rather than acknowledge it into a log recovery may ignore...
		if _, err := d.Append(pts[52:53], ws[52:53]); err == nil {
			t.Fatal("wedged store acknowledged a mutation after an ambiguous checkpoint")
		}
		// ...then crash: whichever (snapshot, log) pair the platform kept —
		// the model keeps the renamed one — recovery holds every
		// acknowledged mutation and nothing else.
		fs.Crash()
		fs.Recover()
		d2, err := persist.Open(crashDir, persist.Options{FS: fs})
		if err != nil {
			t.Fatal(err)
		}
		want := freshCrashMutable(t)
		if _, err := want.Append(pts[48:52], ws[48:52]); err != nil {
			t.Fatal(err)
		}
		if !equalCanon(canonicalize(d2.Mutable()), canonicalize(want)) {
			t.Fatal("acknowledged appends lost across the wedged checkpoint")
		}
	})
}
