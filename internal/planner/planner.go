// Package planner implements the query-optimization opportunity of §4: once
// spatial queries are expressed over distance-bounded raster representations,
// multiple physical plans answer the same aggregation — the ACT-indexed
// lookup join, the Bounded Raster Join on canvases, or the classic exact
// filter-and-refine — and "the optimizer can choose different query plans
// based on the query parameters, the distance bound ... and the estimated
// selectivity". This planner estimates each strategy's cost from workload
// statistics and a calibrated constant model and picks the cheapest.
package planner

import (
	"fmt"
	"math"
	"sort"

	"distbound/internal/geom"
	"distbound/internal/join"
)

// Strategy identifies a physical plan for the aggregation query.
type Strategy int

// Available strategies.
const (
	// StrategyExact is the R*-tree filter-and-refine join (exact answers,
	// no build beyond MBR bulk-loading, PIP cost per candidate).
	StrategyExact Strategy = iota
	// StrategyACT is the approximate trie join: expensive distance-bounded
	// index build, then very cheap repeated evaluation.
	StrategyACT
	// StrategyBRJ is the Bounded Raster Join: no pre-computation, cost
	// proportional to canvas pixels — attractive for one-shot queries at
	// moderate bounds.
	StrategyBRJ
	// StrategyPointIdx probes a resident learned-indexed point store with
	// each region's cover ranges: per-run cost proportional to cover ranges,
	// independent of the point count. Available only when the query's point
	// side is a registered dataset (Query.ResidentPoints).
	StrategyPointIdx
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategyExact:
		return "exact(R*)"
	case StrategyACT:
		return "act"
	case StrategyPointIdx:
		return "pointidx"
	default:
		return "brj"
	}
}

// Query describes an aggregation workload for planning.
type Query struct {
	// NumPoints is the point-set size.
	NumPoints int
	// Regions is the region set (GROUP BY side).
	Regions []geom.Region
	// Bound is the distance bound ε; ≤ 0 means exact answers are required,
	// which forces StrategyExact.
	Bound float64
	// Repetitions is how many times the same region set will be aggregated
	// (e.g. one per time slice in a dashboard); index build cost amortizes
	// over it. 0 means 1.
	Repetitions int
	// MaxTextureSize caps BRJ pass size; ≤ 0 selects the default (4096).
	MaxTextureSize int
	// Aggs is the aggregate set of the query. One request computes every
	// aggregate in it with a single multi-fold pass over a single build, so
	// the planner costs the whole set as ONE run — the expensive per-item
	// work (lookups, range probes, scatters) is shared and the extra
	// per-aggregate fold arithmetic is noise against it. The one set-level
	// decision the planner must make is exclusion: the Bounded Raster Join
	// is unavailable iff ANY aggregate in the set is MIN or MAX. Empty means
	// a single COUNT-like aggregate; ExtremeAgg is OR-ed in for callers
	// still planning per aggregate.
	Aggs []join.Agg
	// ExtremeAgg marks a MIN/MAX aggregation. The Bounded Raster Join's
	// additive canvases carry counts and sums only, so Choose excludes
	// StrategyBRJ — the plan then reflects the fallback instead of the
	// executor silently swapping strategies.
	ExtremeAgg bool
	// ResidentPoints marks the point side as a registered dataset: SFC-sorted
	// and learned-indexed once, resident in memory. Only then is
	// StrategyPointIdx available — an ad-hoc PointSet has no index to probe.
	ResidentPoints bool
	// DeltaPoints is the resident dataset's un-compacted tail: rows appended
	// (or deleted from the delta) since the last compaction, which every
	// region of a point-index query must brute-scan on top of its range
	// probes. The term grows with regions × delta rows, so a bloated delta
	// correctly tips plans back to the streaming strategies until compaction
	// catches up. Ignored unless ResidentPoints is set.
	DeltaPoints int
	// CachedBuild marks strategies whose one-time build artifact (the ACT
	// trie, the R*-tree, or the BRJ region-mask canvases) is already
	// resident in the caller's cache: their build cost has been paid, so
	// Estimate charges none. This is how repetition amortization extends
	// across concurrent callers sharing one engine.
	CachedBuild map[Strategy]bool
	// Stats, when non-nil, is the precomputed ComputeStats of Regions;
	// Estimate then skips its per-call region scan. Callers own keeping it
	// consistent with Regions.
	Stats *RegionStats
}

// RegionStats summarizes the geometry-dependent inputs of the cost model.
// Computing it scans every region's vertices; callers planning repeatedly
// over a fixed region set should ComputeStats once and pass the result via
// Query.Stats.
type RegionStats struct {
	count         int
	meanVertices  float64
	totalPerim    float64
	totalBBoxArea float64
	extent        geom.Rect
}

// ComputeStats precomputes the cost-model statistics for a region set.
func ComputeStats(regions []geom.Region) RegionStats { return statsOf(regions) }

func statsOf(regions []geom.Region) RegionStats {
	st := RegionStats{count: len(regions), extent: geom.EmptyRect()}
	var verts int
	for _, rg := range regions {
		verts += rg.NumVertices()
		st.totalBBoxArea += rg.Bounds().Area()
		st.extent = st.extent.Union(rg.Bounds())
		st.totalPerim += perimeterOf(rg)
	}
	if st.count > 0 {
		st.meanVertices = float64(verts) / float64(st.count)
	}
	return st
}

func perimeterOf(rg geom.Region) float64 {
	switch v := rg.(type) {
	case *geom.Polygon:
		return v.Perimeter()
	case *geom.MultiPolygon:
		var p float64
		for _, part := range v.Polygons {
			p += part.Perimeter()
		}
		return p
	default:
		// Fall back to the bounding-box perimeter for unknown region kinds
		// (e.g. circles): same order of magnitude.
		return rg.Bounds().Perimeter()
	}
}

// CostModel holds the calibrated per-operation constants (nanoseconds). The
// defaults were measured on this repository's benchmark suite; Calibrate-
// style refinement can overwrite them for a new machine.
type CostModel struct {
	// TrieLookup is the ACT per-point lookup cost.
	TrieLookup float64
	// TrieCellBuild is the per-cell cost of HR rasterization + insertion.
	TrieCellBuild float64
	// TreePointQuery is the R*-tree per-point MBR filter cost at moderate
	// region counts; grows logarithmically with the region count.
	TreePointQuery float64
	// PIPPerVertex is the refinement cost per polygon vertex.
	PIPPerVertex float64
	// PixelWrite is the per-pixel rasterization/blend/sum cost of BRJ.
	PixelWrite float64
	// PointScatter is the per-point cost of rendering points to a canvas.
	PointScatter float64
	// RangeProbe is the cost of one resident-store range probe: two learned-
	// index lookups plus the prefix-sum / block-aggregate folds.
	RangeProbe float64
	// DeltaProbe is the per-comparison cost of binary-searching one
	// un-compacted delta row into the cover plan's global merged range list.
	// The inverted delta join pays it DeltaPoints × log2(ranges) times per
	// query — each live delta row is located once and fanned out to the
	// regions posting its range, instead of every region re-scanning the
	// whole delta.
	DeltaProbe float64
	// Calibrated reports whether the constants came from a Calibrate run on
	// this host rather than the reference-machine defaults. Plans carry it
	// through to Explain's cost-model line.
	Calibrated bool
}

// DefaultCostModel returns constants measured on the reference machine
// (single-threaded Go, ~2.7 GHz server core).
func DefaultCostModel() CostModel {
	return CostModel{
		TrieLookup:     450,
		TrieCellBuild:  1100,
		TreePointQuery: 550,
		PIPPerVertex:   4,
		PixelWrite:     2.5,
		PointScatter:   25,
		RangeProbe:     120,
		DeltaProbe:     15,
	}
}

// rangeMergeFactor estimates how many raw cover cells coalesce into one
// probed leaf range: Hilbert locality makes adjacent cover cells contiguous
// on the curve, so merged ranges are a small fraction of the cell count.
const rangeMergeFactor = 3

// Cost is an estimated execution profile in nanoseconds.
type Cost struct {
	Build  float64 // one-time preparation
	PerRun float64 // per repetition
	Total  float64 // Build + Repetitions × PerRun
}

// Estimate predicts the cost of running q with strategy s.
func (m CostModel) Estimate(q Query, s Strategy) Cost {
	reps := float64(q.Repetitions)
	if reps < 1 {
		reps = 1
	}
	st := q.Stats
	if st == nil {
		s := statsOf(q.Regions)
		st = &s
	}
	n := float64(q.NumPoints)

	var c Cost
	switch s {
	case StrategyExact:
		// Filter: tree descent grows with log(regions); candidates per point
		// estimated from bbox-area overlap (≥ 1 where regions tile space).
		logR := math.Log2(float64(st.count) + 2)
		candidates := 1.0
		if a := st.extent.Area(); a > 0 {
			candidates = math.Max(1, st.totalBBoxArea/a)
		}
		c.PerRun = n * (m.TreePointQuery*logR/8 + candidates*st.meanVertices*m.PIPPerVertex)
	case StrategyACT:
		cellSide := q.Bound / math.Sqrt2
		if cellSide <= 0 {
			return Cost{Total: math.Inf(1)}
		}
		// Boundary cells ≈ perimeter/side; interiors add a comparable count
		// under quadtree coalescing.
		cells := 2 * st.totalPerim / cellSide
		c.Build = cells * m.TrieCellBuild
		c.PerRun = n * m.TrieLookup
	case StrategyBRJ:
		pixel := q.Bound / math.Sqrt2
		if pixel <= 0 {
			return Cost{Total: math.Inf(1)}
		}
		maskPixels := st.totalBBoxArea / (pixel * pixel)
		tilePixels := st.extent.Area() / (pixel * pixel)
		// Multi-pass tax: clearing/point canvases per tile.
		maxTex := float64(q.MaxTextureSize)
		if maxTex <= 0 {
			maxTex = 4096
		}
		side := math.Max(st.extent.Width(), st.extent.Height()) / pixel
		tiles := math.Max(1, math.Ceil(side/maxTex))
		// Mask rendering (edge walks + span fills) is the one-time half of
		// the mask cost and is cacheable per bound; the per-run half is the
		// read-only mask·points blend. The split keeps the one-shot total
		// equal to the unsplit model while letting high repetition counts
		// amortize the render.
		maskCost := maskPixels * m.PixelWrite
		c.Build = maskCost / 2
		c.PerRun = maskCost/2 + tilePixels*m.PixelWrite + n*m.PointScatter + tiles*tiles*1e5
	case StrategyPointIdx:
		cellSide := q.Bound / math.Sqrt2
		if cellSide <= 0 || !q.ResidentPoints {
			return Cost{Total: math.Inf(1)}
		}
		// Build: the same per-region HR rasterization ACT pays (the point
		// store itself was built at registration and is shared by every
		// bound, so it charges nothing here). Per run: one range probe per
		// merged cover range — independent of the point count, which is the
		// whole attraction for large resident datasets — plus the inverted
		// delta join: each un-compacted delta row is binary-searched into
		// the global merged range list once, so the term grows with
		// delta × log(ranges), not regions × delta. That keeps the point
		// index viable under heavy ingest; compaction still wins back the
		// pure range-probe economy.
		cells := 2 * st.totalPerim / cellSide
		ranges := cells / rangeMergeFactor
		c.Build = cells * m.TrieCellBuild
		c.PerRun = ranges*m.RangeProbe +
			float64(q.DeltaPoints)*math.Log2(ranges+2)*m.DeltaProbe
	}
	if q.CachedBuild[s] {
		c.Build = 0
	}
	c.Total = c.Build + reps*c.PerRun
	return c
}

// CoverStats describes a resident dataset's cover plan — what the
// point-index strategy will actually execute at this bound. The zero value
// means "no resident cover plan is built yet"; Explain prints the
// cover-plan line only when the stats are real, never estimated.
type CoverStats struct {
	// Ranges is the total per-region cover range count.
	Ranges int
	// Unique is the size of the deduplicated global range list — the probe
	// count one query pays.
	Unique int
	// Boundaries is the number of distinct span boundaries the monotone
	// sweep resolves.
	Boundaries int
}

// Plan is the planner's decision with its considered alternatives.
type Plan struct {
	Strategy Strategy
	Costs    map[Strategy]Cost
	// DeltaFraction is the share of a resident dataset's live points that
	// sit in the un-compacted delta tail (0 for ad-hoc queries and freshly
	// compacted datasets). Explain surfaces it so a plan carrying a large
	// delta says where its per-run cost comes from.
	DeltaFraction float64
	// Cover carries the resident cover plan's measured shape when its
	// artifact is already built (the engine fills it in); Explain renders
	// it as the cover-plan line.
	Cover CoverStats
	// Calibrated records whether the choosing model's constants were fitted
	// to this host by Calibrate; Explain renders it as the cost-model line.
	Calibrated bool
}

// Choose picks the cheapest strategy for q under the model — once per
// aggregate set: every aggregate in q.Aggs rides the same plan, build and
// fold pass. A bound that is not strictly positive (including NaN) forces
// the exact plan; a set containing MIN or MAX excludes the raster join,
// which cannot answer extremes; the learned-index probe strategy is
// considered only for resident datasets.
func (m CostModel) Choose(q Query) Plan {
	var p Plan
	m.ChooseInto(q, &p)
	return p
}

// ChooseInto is Choose writing into a caller-retained Plan: p.Costs is
// cleared and refilled when present (allocated once when nil), so a serving
// loop that recycles its Plan plans without allocating. All other fields
// are reset.
func (m CostModel) ChooseInto(q Query, p *Plan) {
	q.ExtremeAgg = q.ExtremeAgg || join.ExtremeIn(q.Aggs)
	if p.Costs == nil {
		p.Costs = make(map[Strategy]Cost, 4)
	} else {
		clear(p.Costs)
	}
	p.DeltaFraction = 0
	p.Cover = CoverStats{}
	p.Calibrated = m.Calibrated
	if q.ResidentPoints && q.NumPoints > 0 && q.DeltaPoints > 0 {
		// DeltaPoints counts scanned delta rows, dead ones included, so it
		// can exceed the live count (append K then delete all K); anything
		// at or past 1 means the same thing — compact now — so clamp rather
		// than report a >100% share.
		p.DeltaFraction = math.Min(1, float64(q.DeltaPoints)/float64(q.NumPoints))
	}
	if !(q.Bound > 0) {
		p.Strategy = StrategyExact
		p.Costs[StrategyExact] = m.Estimate(q, StrategyExact)
		return
	}
	best := StrategyExact
	bestCost := math.Inf(1)
	for _, s := range [...]Strategy{StrategyExact, StrategyACT, StrategyBRJ, StrategyPointIdx} {
		if s == StrategyBRJ && q.ExtremeAgg {
			continue
		}
		if s == StrategyPointIdx && !q.ResidentPoints {
			continue
		}
		c := m.Estimate(q, s)
		p.Costs[s] = c
		if c.Total < bestCost {
			best, bestCost = s, c.Total
		}
	}
	p.Strategy = best
}

// Explain renders the plan comparison for diagnostics.
func (p Plan) Explain() string {
	type row struct {
		s Strategy
		c Cost
	}
	rows := make([]row, 0, len(p.Costs))
	for s, c := range p.Costs {
		rows = append(rows, row{s, c})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].c.Total < rows[j].c.Total })
	out := ""
	for i, r := range rows {
		marker := " "
		if r.s == p.Strategy {
			marker = "*"
		}
		out += fmt.Sprintf("%s %-10s build=%.1fms run=%.1fms total=%.1fms",
			marker, r.s, r.c.Build/1e6, r.c.PerRun/1e6, r.c.Total/1e6)
		if i < len(rows)-1 {
			out += "\n"
		}
	}
	if p.Cover != (CoverStats{}) {
		out += fmt.Sprintf("\ncover-plan: %d region-ranges → %d unique, %d boundary probes per query",
			p.Cover.Ranges, p.Cover.Unique, p.Cover.Boundaries)
	}
	if p.DeltaFraction > 0 {
		out += fmt.Sprintf("\ndelta: %.1f%% of resident points await compaction (pointidx per-run cost includes the inverted delta join)",
			100*p.DeltaFraction)
	}
	if p.Calibrated {
		out += "\ncost-model: calibrated"
	} else {
		out += "\ncost-model: default"
	}
	return out
}
