package persist

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"path/filepath"
	"sync"
	"time"

	"distbound/internal/geom"
	"distbound/internal/pointstore"
)

// Options configures a durable store.
type Options struct {
	// FS is the filesystem to persist through; nil selects the operating
	// system (OSFS). Tests inject a fault-injecting implementation here.
	FS FS
	// GroupCommit batches WAL fsyncs: a mutation returns once written, and
	// the log syncs at most GroupCommit after the first unsynced record. A
	// crash may lose mutations from the last unsynced window. Zero or
	// negative syncs every record before it is acknowledged.
	GroupCommit time.Duration
	// DisableMMap forces Open to copy the snapshot into the heap instead of
	// serving column reads from the mapped file.
	DisableMMap bool
}

// Stats describes a durable store's on-disk and recovery state.
type Stats struct {
	// Generation is the compaction generation of the snapshot file.
	Generation uint64
	// SnapshotBytes is the snapshot file's size.
	SnapshotBytes int64
	// WALRecords and WALBytes measure the log extending the snapshot.
	WALRecords uint64
	WALBytes   int64
	// RecoveryWall is how long Open took — snapshot load/map, validation,
	// and WAL replay; zero for a store born with Create.
	RecoveryWall time.Duration
	// MMapped reports whether the base columns are currently served from
	// the mapped snapshot file rather than heap copies. It clears at the
	// first checkpoint whose compaction replaces the mapped base with
	// freshly merged heap columns.
	MMapped bool
	// Err is the sticky wedge error: non-nil after a WAL write or sync
	// failure — the in-memory state is ahead of what disk can replay — or
	// after a checkpoint whose directory sync failed post-rename, when
	// which generation a crash would resurface is unknowable. In either
	// case no further mutation will be accepted.
	Err error
	// CheckpointErr is the most recent Checkpoint failure, nil after a
	// success. A checkpoint that fails before its snapshot rename does not
	// wedge the store: the previous snapshot+log pair remains in charge and
	// the checkpoint can be retried. A directory-sync failure after the
	// rename additionally wedges the store (see Err).
	CheckpointErr error
}

var (
	errWALClosed = errors.New("persist: write-ahead log closed")
	errClosed    = errors.New("persist: durable store closed")
)

// Durable binds a pointstore.Mutable to a directory holding its checksummed
// snapshot and write-ahead log. Mutations must flow through Append and
// Delete — never directly through the Mutable — so the log stays complete;
// reads keep going straight to Mutable().Snapshot() and pay nothing.
//
// The write discipline is apply-then-log: a mutation is applied to the
// in-memory store first (validating it), then logged. If logging fails the
// store wedges — the mutation is visible in memory but Err is set and every
// later mutation is refused, because acknowledging anything after a lost
// record would let replay diverge from the acknowledged history.
type Durable struct {
	dir  string
	fs   FS
	opts Options
	m    *pointstore.Mutable
	hasW bool

	mu        sync.Mutex
	wal       *walWriter
	gen       uint64 // generation of the snapshot file + log name on disk
	snapBytes int64
	recovery  time.Duration
	mmapped   bool
	err       error // sticky wedge
	ckptErr   error
	closed    bool
}

// Create makes m durable under dir: an immediate checkpoint writes the
// compacted base as the first snapshot and starts its log. m must not be
// mutated except through the returned Durable.
func Create(dir string, m *pointstore.Mutable, opts Options) (*Durable, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = OSFS
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, err
	}
	d := &Durable{dir: dir, fs: fsys, opts: opts, m: m, hasW: m.HasWeights()}
	if err := d.checkpointLocked(); err != nil {
		return nil, err
	}
	return d, nil
}

// Open rebuilds the durable store persisted under dir: it validates and
// loads (or mmaps) the snapshot, replays the log matching the snapshot's
// generation, truncates any torn log tail, and resumes logging. The
// recovered store is bit-identical to the acknowledged state at the crash:
// same columns, same IDs, same nextID.
func Open(dir string, opts Options) (*Durable, error) {
	start := time.Now()
	fsys := opts.FS
	if fsys == nil {
		fsys = OSFS
	}
	snapPath := filepath.Join(dir, SnapshotName)

	var (
		data    []byte
		pin     any
		mmapped bool
	)
	if fsys == OSFS && !opts.DisableMMap && mmapSupported {
		if b, p, err := mmapFile(snapPath); err == nil {
			data, pin, mmapped = b, p, true
		}
	}
	if data == nil {
		b, err := fsys.ReadFile(snapPath)
		if err != nil {
			return nil, err
		}
		data = b
	}
	meta, secs, err := parseSnapshot(data)
	if err != nil {
		return nil, err
	}
	var cols pointstore.BaseColumns
	if mmapped {
		cols = aliasColumns(data, meta, secs)
	} else {
		cols = decodeColumns(data, meta, secs)
		pin = nil
	}
	m, err := pointstore.NewMutableFromColumns(cols, meta.domain, meta.curve,
		int(meta.dropped), meta.nextID, meta.gen, pin)
	if err != nil {
		return nil, err
	}

	d := &Durable{
		dir: dir, fs: fsys, opts: opts, m: m, hasW: meta.hasW,
		gen: meta.gen, snapBytes: int64(len(data)), mmapped: mmapped,
	}
	if err := d.recoverWAL(meta.gen); err != nil {
		return nil, err
	}
	d.recovery = time.Since(start)
	return d, nil
}

// recoverWAL replays the log for generation gen onto the freshly loaded
// base and attaches the writer to its valid prefix. A missing or torn-header
// log is replaced by a fresh one: the header is made durable before any
// record can be acknowledged, so an invalid header proves no record was.
func (d *Durable) recoverWAL(gen uint64) error {
	path := filepath.Join(d.dir, WALName(gen))
	data, err := d.fs.ReadFile(path)
	if err != nil && !errors.Is(err, iofs.ErrNotExist) {
		return err
	}
	if err == nil {
		if hdrGen, ok := decodeWALHeader(data); ok {
			if hdrGen != gen {
				return fmt.Errorf("persist: log %s carries generation %d", WALName(gen), hdrGen)
			}
			recs, valid := decodeWAL(data, d.hasW)
			for _, r := range recs {
				switch r.op {
				case walOpAppend:
					if _, err := d.m.Append(r.pts, r.ws); err != nil {
						return fmt.Errorf("persist: replaying append: %w", err)
					}
				case walOpDelete:
					d.m.Delete(r.ids...)
				}
			}
			w, err := attachWAL(d.fs, path, valid, uint64(len(recs)), d.opts.GroupCommit)
			if err != nil {
				return err
			}
			d.wal = w
			return nil
		}
	}
	w, err := createWAL(d.fs, path, gen, d.opts.GroupCommit)
	if err != nil {
		return err
	}
	d.wal = w
	return nil
}

// Mutable returns the in-memory store. Read it freely; mutate it only
// through the Durable.
func (d *Durable) Mutable() *pointstore.Mutable { return d.m }

// Append applies and logs an append batch, returning the assigned IDs —
// exactly the IDs a replay of the log will reassign.
func (d *Durable) Append(pts []geom.Point, weights []float64) ([]uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.usableLocked(); err != nil {
		return nil, err
	}
	ids, err := d.m.Append(pts, weights)
	if err != nil {
		return nil, err // batch rejected before any state changed: nothing to log
	}
	if len(ids) == 0 {
		return ids, nil
	}
	if err := d.wal.append(encodeAppendRecord(pts, weights)); err != nil {
		d.err = err
		return ids, err
	}
	return ids, nil
}

// Delete applies and logs a delete batch, returning how many points were
// live. A batch that deletes nothing changes no state and is not logged.
func (d *Durable) Delete(ids ...uint64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.usableLocked(); err != nil {
		return 0, err
	}
	n := d.m.Delete(ids...)
	if n == 0 {
		return 0, nil
	}
	if err := d.wal.append(encodeDeleteRecord(ids)); err != nil {
		d.err = err
		return n, err
	}
	return n, nil
}

// Sync forces any group-committed log records to stable storage now.
func (d *Durable) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.usableLocked(); err != nil {
		return err
	}
	if err := d.wal.sync(); err != nil {
		d.err = err
		return err
	}
	return nil
}

// Checkpoint compacts the store and makes the result the new on-disk
// snapshot, retiring the log: write temp + fsync, start the next
// generation's log, atomic-rename, fsync the directory, drop the old log.
// A failure before the rename leaves the previous snapshot+log pair in
// charge — the error is recorded in Stats.CheckpointErr and the checkpoint
// retried later; the store does not wedge. A directory-sync failure after
// the rename is the one exception: which generation a crash would resurface
// is unknowable, so the store wedges (Stats.Err) rather than acknowledge
// mutations into a log that recovery might ignore.
func (d *Durable) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.usableLocked(); err != nil {
		return err
	}
	err := d.checkpointLocked()
	d.ckptErr = err
	return err
}

func (d *Durable) usableLocked() error {
	if d.closed {
		return errClosed
	}
	return d.err
}

// checkpointLocked runs the checkpoint sequence. Crash-safety argument for
// each window:
//
//   - before Rename: disk still holds the old snapshot + old log; the new
//     log (already created) is stale litter the next checkpoint truncates.
//   - after Rename: disk holds the new snapshot, whose log (named by the
//     new generation) was created and made durable before the rename, and
//     is empty — exactly the records acknowledged since the checkpoint.
//
// In neither window can a record apply twice: recovery replays only the log
// named after the generation it loaded. The same rule is why a SyncDir
// failure after the rename must wedge the store: with the directory update's
// durability unknown, any record acknowledged afterwards would live in a log
// that recovery may ignore.
func (d *Durable) checkpointLocked() error {
	d.m.Compact()
	s := d.m.Snapshot()
	gen := s.Gen()
	if d.wal != nil && gen == d.gen {
		// Nothing mutated since the last checkpoint (a logged mutation would
		// have forced Compact to publish a new generation): disk is current.
		return nil
	}
	// Reaching here means a compaction has replaced the Open-time base with
	// freshly merged heap columns — the mapped snapshot file, if any, no
	// longer backs what is served, however this checkpoint ends.
	d.mmapped = false
	cols := s.BaseColumns()
	meta := snapMeta{
		gen:     gen,
		nextID:  d.m.NextID(),
		dropped: uint64(d.m.Dropped()),
		rows:    uint64(len(cols.Keys)),
		hasW:    d.hasW,
		domain:  d.m.Domain(),
		curve:   d.m.Curve(),
	}

	tmpPath := filepath.Join(d.dir, snapTmpName)
	f, err := d.fs.Create(tmpPath)
	if err != nil {
		return err
	}
	size, err := writeSnapshot(f, meta, cols)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}

	newWALPath := filepath.Join(d.dir, WALName(gen))
	nw, err := createWAL(d.fs, newWALPath, gen, d.opts.GroupCommit)
	if err != nil {
		return err
	}
	if err := d.fs.Rename(tmpPath, filepath.Join(d.dir, SnapshotName)); err != nil {
		nw.close()
		d.fs.Remove(newWALPath) //nolint:errcheck // best-effort litter removal
		return err
	}
	if err := d.fs.SyncDir(d.dir); err != nil {
		// The rename happened but the directory update's durability is now
		// unknown: a crash could resurface either generation's snapshot.
		// Logging further mutations to either log would risk losing them —
		// recovery replays only the log named after the generation it loads —
		// so the store wedges. Both (snapshot, log) pairs stay on disk,
		// each coherent and neither accepting new records, and recovery from
		// whichever the platform kept loses nothing acknowledged so far.
		nw.close() //nolint:errcheck // the empty log's header is already durable
		d.err = fmt.Errorf("persist: syncing directory after snapshot rename: %w", err)
		return d.err
	}

	oldWAL, oldGen := d.wal, d.gen
	d.wal, d.gen, d.snapBytes = nw, gen, size
	if oldWAL != nil {
		oldWAL.close()                                     //nolint:errcheck // superseded log; nothing to save
		d.fs.Remove(filepath.Join(d.dir, WALName(oldGen))) //nolint:errcheck
	}
	return nil
}

// Stats reports the store's durability state.
func (d *Durable) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := Stats{
		Generation:    d.gen,
		SnapshotBytes: d.snapBytes,
		RecoveryWall:  d.recovery,
		MMapped:       d.mmapped,
		Err:           d.err,
		CheckpointErr: d.ckptErr,
	}
	if d.wal != nil {
		recs, bytes, werr := d.wal.stats()
		st.WALRecords, st.WALBytes = recs, bytes
		if st.Err == nil && werr != nil && !errors.Is(werr, errWALClosed) {
			st.Err = werr // the group-commit timer wedged the writer off-thread
		}
	}
	return st
}

// Close flushes the log and releases the store's files. The in-memory
// Mutable stays readable; mutations are refused.
func (d *Durable) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	if d.wal == nil {
		return nil
	}
	return d.wal.close()
}
