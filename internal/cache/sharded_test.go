package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestShardedLRUBasics(t *testing.T) {
	c := NewShardedLRU[int, string](64, nil)
	if _, ok := c.Get(1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(1, "one")
	if v, ok := c.Get(1); !ok || v != "one" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	c.Put(1, "uno")
	if v, ok := c.Get(1); !ok || v != "uno" {
		t.Fatalf("after replace Get(1) = %q, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 hits, 1 miss, 1 eviction (replacement)", st)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestShardedLRUEvictsColdEntries(t *testing.T) {
	var mu sync.Mutex
	evicted := map[int]bool{}
	c := NewShardedLRU[int, int](64, func(v int) {
		mu.Lock()
		evicted[v] = true
		mu.Unlock()
	})
	// Overfill well past capacity: the per-shard bound (64/16 = 4 entries)
	// must hold, the overflow must land in onEvict, and a recently touched
	// key must survive its colder shard-mates.
	for i := 0; i < 500; i++ {
		c.Put(i, i)
		c.Get(0) // keep key 0 hot
	}
	if got := c.Len(); got > 64 {
		t.Fatalf("Len = %d exceeds capacity 64", got)
	}
	mu.Lock()
	n := len(evicted)
	mu.Unlock()
	if n != 500-c.Len() {
		t.Fatalf("%d evictions reported for %d resident of 500 inserted", n, c.Len())
	}
	if _, ok := c.Get(0); !ok {
		t.Fatal("hot key 0 was evicted while colder shard-mates survived")
	}
	if st := c.Stats(); st.Evictions != int64(n) {
		t.Fatalf("Stats.Evictions = %d, want %d", st.Evictions, n)
	}
}

func TestShardedLRUSetCapacity(t *testing.T) {
	dropped := 0
	c := NewShardedLRU[int, int](256, func(int) { dropped++ })
	for i := 0; i < 100; i++ {
		c.Put(i, i)
	}
	if c.Len() != 100 {
		t.Fatalf("Len = %d, want 100", c.Len())
	}
	c.SetCapacity(0)
	if c.Len() != 0 {
		t.Fatalf("Len after disable = %d, want 0", c.Len())
	}
	if dropped != 100 {
		t.Fatalf("%d values dropped on disable, want 100", dropped)
	}
	// Disabled: Put rejects (still through onEvict), Get misses.
	c.Put(1, 1)
	if dropped != 101 {
		t.Fatalf("disabled Put bypassed onEvict (dropped = %d)", dropped)
	}
	if _, ok := c.Get(1); ok {
		t.Fatal("hit on disabled cache")
	}
	c.SetCapacity(64)
	c.Put(1, 1)
	if _, ok := c.Get(1); !ok {
		t.Fatal("re-enabled cache refused an entry")
	}
}

func TestShardedLRUConcurrent(t *testing.T) {
	c := NewShardedLRU[string, int](128, func(int) {})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("k%d", i%200)
				if v, ok := c.Get(k); ok && v != i%200 {
					t.Errorf("Get(%s) = %d", k, v)
				}
				c.Put(k, i%200)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 128 {
		t.Fatalf("Len = %d exceeds capacity", c.Len())
	}
}

func TestShardedLRUGetAllocFree(t *testing.T) {
	c := NewShardedLRU[uint64, *int](64, nil)
	v := 42
	for i := uint64(0); i < 8; i++ {
		c.Put(i, &v)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := uint64(0); i < 8; i++ {
			if _, ok := c.Get(i); !ok {
				t.Fatal("miss on resident key")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("Get allocates %v per run of 8 hits; the hit path must be allocation-free", allocs)
	}
}
