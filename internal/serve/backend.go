package serve

import (
	"context"
	"fmt"

	"distbound"
	"distbound/internal/cache"
	"distbound/internal/shard"
)

// Backend is what the handlers serve: either a sharded dataset
// (scatter-gather over shard.Sharded.Do) or a single resident dataset
// (Engine.Do / Engine.DoBatch on the point-index strategy). Both speak
// shard.Request/Response so the handlers, metrics and clients are
// indifferent to the partition width — an unsharded backend just always
// reports a 1/1 fan-out.
type Backend interface {
	// Mode names the backend ("sharded" or "unsharded") for stats.
	Mode() string
	// Query answers one aggregation request under ctx.
	Query(ctx context.Context, req shard.Request) (shard.Response, error)
	// Batch answers many requests, pairing each with its own outcome — a
	// failed request never aborts its siblings, mirroring DoBatch.
	Batch(ctx context.Context, reqs []shard.Request) ([]shard.Response, []error)
	// Append adds points to the dataset — weights iff it carries a weight
	// column — returning the assigned IDs. Every successful append bumps
	// Epoch, stranding cached results.
	Append(pts []distbound.Point, weights []float64) ([]uint64, error)
	// Epoch is the dataset's mutation counter (the per-shard sum on a
	// sharded backend) — the result cache's invalidation currency.
	Epoch() uint64
	// ResultCacheStats reports the backend's result-cache counters: the
	// merged scatter-gather cache when sharded, the engine cache when not.
	ResultCacheStats() cache.Stats
	// Describe fills the dataset half of a stats response.
	Describe(st *StatsResponse)
	// Close releases the backend's datasets.
	Close()
}

// ShardedBackend serves a shard.Sharded.
type ShardedBackend struct {
	S *shard.Sharded
}

func (b *ShardedBackend) Mode() string { return "sharded" }

func (b *ShardedBackend) Query(ctx context.Context, req shard.Request) (shard.Response, error) {
	return b.S.Do(ctx, req)
}

func (b *ShardedBackend) Batch(ctx context.Context, reqs []shard.Request) ([]shard.Response, []error) {
	resps := make([]shard.Response, len(reqs))
	errs := make([]error, len(reqs))
	for i := range reqs {
		// Each request already scatters across shards; running the batch
		// lines in order keeps the stream's responses aligned with its
		// requests without buffering.
		resps[i], errs[i] = b.S.Do(ctx, reqs[i])
	}
	return resps, errs
}

func (b *ShardedBackend) Append(pts []distbound.Point, weights []float64) ([]uint64, error) {
	return b.S.Append(pts, weights)
}

func (b *ShardedBackend) Epoch() uint64 { return b.S.EpochSum() }

func (b *ShardedBackend) ResultCacheStats() cache.Stats { return b.S.CacheStats() }

func (b *ShardedBackend) Describe(st *StatsResponse) {
	s := b.S.Stats()
	st.Dataset = b.S.Name()
	st.Regions = b.S.NumRegions()
	st.Live = s.Live
	st.Dropped = s.Dropped
	st.MemoryBytes = b.S.MemoryBytes()
	for _, sh := range s.PerShard {
		st.Shards = append(st.Shards, ShardStats{
			LoKey: sh.LoKey, HiKey: sh.HiKey, Live: sh.Live,
			Generation: sh.Generation, Epoch: sh.Epoch,
		})
	}
}

func (b *ShardedBackend) Close() { b.S.Close() }

// UnshardedBackend serves one resident dataset through Engine.Do and
// Engine.DoBatch, pinned to the point-index strategy — the same physical
// plan the shards run, so a sharded-vs-unsharded head-to-head measures the
// partitioning, not a plan change.
type UnshardedBackend struct {
	E  *distbound.Engine
	DS *distbound.Dataset
}

func (b *UnshardedBackend) Mode() string { return "unsharded" }

// engineRequest maps the serving currency onto a distbound.Request.
func (b *UnshardedBackend) engineRequest(req shard.Request) (distbound.Request, error) {
	if !(req.Bound > 0) {
		return distbound.Request{}, fmt.Errorf("serving requires a positive bound, got %v", req.Bound)
	}
	strat := distbound.StrategyPointIdx
	return distbound.Request{
		Dataset:     b.DS,
		Aggs:        req.Aggs,
		Bound:       req.Bound,
		Repetitions: req.Repetitions,
		Strategy:    &strat,
		Workers:     req.Workers,
	}, nil
}

// detach deep-copies a pooled engine response into the serving currency and
// releases the original, so handlers may hold results past the next query.
func detach(resp distbound.Response) shard.Response {
	out := shard.Response{
		ShardsContacted: 1,
		ShardsTotal:     1,
		RangesProbed:    resp.RangesProbed,
		DeltaProbed:     resp.DeltaProbed,
		Wall:            resp.Wall,
		Results:         make([]distbound.Result, len(resp.Results)),
	}
	for i, r := range resp.Results {
		out.Results[i] = distbound.Result{
			Agg:    r.Agg,
			Counts: append([]int64(nil), r.Counts...),
		}
		if r.Sums != nil {
			out.Results[i].Sums = append([]float64(nil), r.Sums...)
		}
		if r.Extremes != nil {
			out.Results[i].Extremes = append([]float64(nil), r.Extremes...)
		}
	}
	resp.Release()
	return out
}

func (b *UnshardedBackend) Query(ctx context.Context, req shard.Request) (shard.Response, error) {
	er, err := b.engineRequest(req)
	if err != nil {
		return shard.Response{}, err
	}
	resp, err := b.E.Do(ctx, er)
	if err != nil {
		return shard.Response{}, err
	}
	return detach(resp), nil
}

func (b *UnshardedBackend) Batch(ctx context.Context, reqs []shard.Request) ([]shard.Response, []error) {
	out := make([]shard.Response, len(reqs))
	errs := make([]error, len(reqs))
	ers := make([]distbound.Request, 0, len(reqs))
	idx := make([]int, 0, len(reqs))
	for i := range reqs {
		er, err := b.engineRequest(reqs[i])
		if err != nil {
			errs[i] = err
			continue
		}
		ers = append(ers, er)
		idx = append(idx, i)
	}
	if len(ers) == 0 {
		return out, errs
	}
	resps, err := b.E.DoBatch(ctx, ers, 0)
	if err != nil {
		for _, i := range idx {
			errs[i] = err
		}
		return out, errs
	}
	for k, i := range idx {
		if resps[k].Err != nil {
			errs[i] = resps[k].Err
			continue
		}
		out[i] = detach(resps[k])
	}
	return out, errs
}

func (b *UnshardedBackend) Append(pts []distbound.Point, weights []float64) ([]uint64, error) {
	return b.DS.Append(pts, weights)
}

func (b *UnshardedBackend) Epoch() uint64 { return b.DS.Epoch() }

func (b *UnshardedBackend) ResultCacheStats() cache.Stats { return b.E.ResultCacheStats() }

func (b *UnshardedBackend) Describe(st *StatsResponse) {
	s := b.DS.Stats()
	st.Dataset = b.DS.Name()
	st.Regions = b.E.NumRegions()
	st.Live = s.Live
	st.Dropped = b.DS.Dropped()
	st.MemoryBytes = b.DS.MemoryBytes()
}

func (b *UnshardedBackend) Close() { b.E.UnregisterPoints(b.DS.Name()) }
