// Batched span folds: the plural counterparts of CountSpan/SumSpan/MinSpan/
// MaxSpan, taking a cover plan's whole resolved span list at once. Folding
// every range in one pass over structure-of-arrays inputs replaces the per-
// range call-and-branch cadence with tight unrolled loops — the probe phase
// of the warm resident path spends its time here, so everything below is on
// the zero-allocation contract.
//
// Bit-compatibility with the scalar accessors is load-bearing: the fold
// decomposition (partial head rows, whole sparse blocks, partial tail rows)
// matches the scalar loops exactly, and the 4-way unrolled block folds are
// safe because min/max over finite weights — Build and Append reject NaN and
// ±Inf — are order-independent, multiple accumulators included.
package pointstore

import "math"

// SumSpans writes the weight sum of positions [los[r], his[r]) to out[r] for
// every range, via the prefix-sum column: two loads and a subtract per range,
// unrolled 4-way. The store must have weights and len(out) ≥ len(los) ==
// len(his).
//
//distbound:noalloc
func (s *Store) SumSpans(los, his []int, out []float64) {
	p := s.prefix
	n := len(los)
	r := 0
	for ; r+4 <= n; r += 4 {
		out[r] = p[his[r]] - p[los[r]]
		out[r+1] = p[his[r+1]] - p[los[r+1]]
		out[r+2] = p[his[r+2]] - p[los[r+2]]
		out[r+3] = p[his[r+3]] - p[los[r+3]]
	}
	for ; r < n; r++ {
		out[r] = p[his[r]] - p[los[r]]
	}
}

// MinSpans writes the minimum weight of positions [los[r], his[r]) to out[r]
// for every range (+Inf for an empty range). The store must have weights.
//
//distbound:noalloc
func (s *Store) MinSpans(los, his []int, out []float64) {
	for r := range los {
		out[r] = s.minSpanFold(los[r], his[r])
	}
}

// MaxSpans is MinSpans for the maximum (-Inf when empty).
//
//distbound:noalloc
func (s *Store) MaxSpans(los, his []int, out []float64) {
	for r := range los {
		out[r] = s.maxSpanFold(los[r], his[r])
	}
}

// minSpanFold is MinSpan with the block/partial branch hoisted out of the
// loop: the span splits once into head rows, whole blocks, and tail rows, and
// the block fold runs 4-way unrolled. Identical results to MinSpan — the same
// rows and blocks fold in, and min over finite weights is order-independent.
//
//distbound:noalloc
func (s *Store) minSpanFold(i, j int) float64 {
	m := math.Inf(1)
	if i >= j {
		return m
	}
	w := s.weights
	firstFull := (i + BlockSize - 1) / BlockSize
	lastFull := j / BlockSize
	if firstFull >= lastFull {
		for ; i < j; i++ {
			m = math.Min(m, w[i])
		}
		return m
	}
	for ; i < firstFull*BlockSize; i++ {
		m = math.Min(m, w[i])
	}
	bm := s.blockMin[firstFull:lastFull]
	m0, m1, m2, m3 := m, m, m, m
	b := 0
	for ; b+4 <= len(bm); b += 4 {
		m0 = math.Min(m0, bm[b])
		m1 = math.Min(m1, bm[b+1])
		m2 = math.Min(m2, bm[b+2])
		m3 = math.Min(m3, bm[b+3])
	}
	m = math.Min(math.Min(m0, m1), math.Min(m2, m3))
	for ; b < len(bm); b++ {
		m = math.Min(m, bm[b])
	}
	for i = lastFull * BlockSize; i < j; i++ {
		m = math.Min(m, w[i])
	}
	return m
}

// maxSpanFold mirrors minSpanFold over blockMax.
//
//distbound:noalloc
func (s *Store) maxSpanFold(i, j int) float64 {
	m := math.Inf(-1)
	if i >= j {
		return m
	}
	w := s.weights
	firstFull := (i + BlockSize - 1) / BlockSize
	lastFull := j / BlockSize
	if firstFull >= lastFull {
		for ; i < j; i++ {
			m = math.Max(m, w[i])
		}
		return m
	}
	for ; i < firstFull*BlockSize; i++ {
		m = math.Max(m, w[i])
	}
	bm := s.blockMax[firstFull:lastFull]
	m0, m1, m2, m3 := m, m, m, m
	b := 0
	for ; b+4 <= len(bm); b += 4 {
		m0 = math.Max(m0, bm[b])
		m1 = math.Max(m1, bm[b+1])
		m2 = math.Max(m2, bm[b+2])
		m3 = math.Max(m3, bm[b+3])
	}
	m = math.Max(math.Max(m0, m1), math.Max(m2, m3))
	for ; b < len(bm); b++ {
		m = math.Max(m, bm[b])
	}
	for i = lastFull * BlockSize; i < j; i++ {
		m = math.Max(m, w[i])
	}
	return m
}

// CountSpans writes the live point count of base rows [los[r], his[r]) to
// out[r] for every range. With no tombstones it is a pure subtract loop;
// otherwise each range pays the same two tombstone searches CountSpan does.
//
//distbound:noalloc
func (s *Snapshot) CountSpans(los, his []int, out []int64) {
	if len(s.tombPos) == 0 {
		n := len(los)
		r := 0
		for ; r+4 <= n; r += 4 {
			out[r] = int64(his[r] - los[r])
			out[r+1] = int64(his[r+1] - los[r+1])
			out[r+2] = int64(his[r+2] - los[r+2])
			out[r+3] = int64(his[r+3] - los[r+3])
		}
		for ; r < n; r++ {
			out[r] = int64(his[r] - los[r])
		}
		return
	}
	for r := range los {
		out[r] = int64(s.CountSpan(los[r], his[r]))
	}
}

// SumSpans writes the live weight sum of base rows [los[r], his[r]) to out[r]
// for every range: the batched base prefix fold, then — only when tombstones
// exist — a per-range subtraction of the tombstoned prefix difference.
//
//distbound:noalloc
func (s *Snapshot) SumSpans(los, his []int, out []float64) {
	s.base.SumSpans(los, his, out)
	if len(s.tombPos) == 0 {
		return
	}
	for r := range los {
		if los[r] >= his[r] {
			continue
		}
		t, first := s.tombsIn(los[r], his[r])
		if t > 0 {
			out[r] -= s.tombPrefix[first+t] - s.tombPrefix[first]
		}
	}
}

// MinSpans writes the live weight minimum of base rows [los[r], his[r]) to
// out[r] for every range (+Inf when empty). Tombstone-free snapshots — the
// steady state right after a compaction — take the batched store fold;
// otherwise each range falls back to the tombstone-skipping scalar scan.
//
//distbound:noalloc
func (s *Snapshot) MinSpans(los, his []int, out []float64) {
	if len(s.tombPos) == 0 {
		s.base.MinSpans(los, his, out)
		return
	}
	for r := range los {
		out[r] = s.extremeSpan(los[r], his[r], false)
	}
}

// MaxSpans is MinSpans for the maximum (-Inf when empty).
//
//distbound:noalloc
func (s *Snapshot) MaxSpans(los, his []int, out []float64) {
	if len(s.tombPos) == 0 {
		s.base.MaxSpans(los, his, out)
		return
	}
	for r := range los {
		out[r] = s.extremeSpan(los[r], his[r], true)
	}
}
