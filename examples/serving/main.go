// Serving: stand up a sharded distboundd in-process and drive it over real
// HTTP — one JSON query with a deadline budget, one streamed NDJSON batch,
// and the stats endpoint showing the shard layout. The same requests work
// against a daemon started with `go run ./cmd/distboundd`.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"distbound/internal/data"
	"distbound/internal/serve"
	"distbound/internal/shard"
)

func main() {
	// A sharded dataset: 16 districts tiling the city, 50k taxi pickups
	// with fares, partitioned into 4 contiguous SFC key-range shards.
	districts := data.Regions(data.Partition(7, 4, 4, 8))
	pts, fares := data.TaxiPoints(7, 50_000)
	sharded, _, err := shard.New("taxi", districts, pts, fares, 4)
	if err != nil {
		log.Fatal(err)
	}
	defer sharded.Close()

	// The same handler set cmd/distboundd mounts, on a loopback listener.
	server := serve.NewServer(&serve.ShardedBackend{S: sharded}, 8 /* per-tenant concurrency */)
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()
	fmt.Printf("serving %d points in %d shards on %s\n\n", sharded.Len(), sharded.NumShards(), ts.URL)

	// One query: COUNT and AVG fare per district within a 64 m bound, with
	// a tenant name and a 2-second deadline budget.
	body, _ := json.Marshal(serve.QueryRequest{Aggs: []string{"count", "avg"}, Bound: 64})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/query", bytes.NewReader(body))
	req.Header.Set(serve.TenantHeader, "example")
	req.Header.Set(serve.DeadlineHeader, "2000")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	var q serve.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&q); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("query touched %d/%d shards in %.2f ms\n",
		q.ShardsContacted, q.ShardsTotal, float64(q.WallNs)/1e6)
	for _, r := range q.Results {
		fmt.Printf("  %-5s district 0: %.2f (of %d pickups)\n", r.Agg, r.Values[0], r.Counts[0])
	}

	// One streamed batch: three bounds down one connection, one NDJSON
	// response line per request line.
	var in bytes.Buffer
	for _, bound := range []float64{16, 32, 64} {
		line, _ := json.Marshal(serve.QueryRequest{Aggs: []string{"count"}, Bound: bound})
		in.Write(line)
		in.WriteByte('\n')
	}
	bresp, err := http.Post(ts.URL+"/v1/batch", "application/x-ndjson", &in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbatch:")
	dec := json.NewDecoder(bresp.Body)
	for dec.More() {
		var line serve.QueryResponse
		if err := dec.Decode(&line); err != nil {
			log.Fatal(err)
		}
		total := int64(0)
		for _, c := range line.Results[0].Counts {
			total += c
		}
		fmt.Printf("  %d matches across districts, %d/%d shards\n",
			total, line.ShardsContacted, line.ShardsTotal)
	}
	bresp.Body.Close()

	// The stats endpoint exposes the shard layout the routing works over.
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	var st serve.StatsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	sresp.Body.Close()
	fmt.Printf("\n%s backend, %d live points:\n", st.Backend, st.Live)
	for i, sh := range st.Shards {
		fmt.Printf("  shard %d: keys [%d, %d], %d points (generation %d)\n",
			i, sh.LoKey, sh.HiKey, sh.Live, sh.Generation)
	}
}
