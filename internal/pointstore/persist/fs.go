// Package persist gives a resident point dataset a durable life on disk: a
// versioned, checksummed columnar snapshot of the SFC-sorted base that Open
// either loads fully or mmaps and serves zero-copy through the existing
// Snapshot accessors, plus a write-ahead log for the append/delete tail so a
// reopened store replays exactly the mutations acknowledged since the last
// checkpoint.
//
// Crash-consistency rests on three disciplines, and on nothing else:
//
//   - A snapshot becomes current only by an atomic rename of a fully
//     written, fsynced temp file; a reader never sees a partial snapshot.
//   - Every WAL record carries its own length prefix and CRC; replay stops
//     at the first record that fails either, so a torn tail costs at most
//     the records that were never acknowledged as durable.
//   - The WAL file is named after the generation it extends; a checkpoint
//     writes the new snapshot and starts a fresh log, and recovery only
//     replays the log whose generation matches the snapshot it loaded —
//     a crash between the two steps can never double-apply a record.
//
// The package talks to the filesystem exclusively through the FS interface
// below so the recovery tests can inject failures, torn writes and crashes
// at every single call site and prove the disciplines sufficient.
package persist

import (
	"io"
	"os"
	"path/filepath"
)

// FS is the filesystem surface the durable store writes through. Production
// code uses the operating system via OSFS; recovery tests substitute a
// fault-injecting in-memory implementation. Implementations must be safe
// for concurrent use — the group-commit timer syncs from its own goroutine.
type FS interface {
	// Create opens name for writing, truncating any existing content.
	// Writes append sequentially from the start of the file.
	Create(name string) (File, error)
	// OpenWrite opens an existing file; writes append at the end of the
	// file, after any Truncate the caller applies first.
	OpenWrite(name string) (File, error)
	// ReadFile returns the full content of name.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// SyncDir flushes dir's metadata — the durability point for entries
	// created or renamed within it.
	SyncDir(dir string) error
}

// File is one writable file of an FS.
type File interface {
	io.Writer
	// Truncate discards everything past size.
	Truncate(size int64) error
	// Sync flushes written data to stable storage — the only call after
	// which the data is guaranteed to survive a crash.
	Sync() error
	Close() error
}

// OSFS is the operating-system filesystem — the production FS.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC|os.O_APPEND, 0o644)
}

func (osFS) OpenWrite(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) SyncDir(dir string) error {
	f, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	// Some filesystems (and platforms) reject fsync on a directory handle;
	// rename durability is then the platform's own guarantee, and failing
	// the checkpoint over it would turn a portability wart into an outage.
	_ = f.Sync()
	return f.Close()
}
