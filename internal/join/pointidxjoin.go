package join

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"distbound/internal/geom"
	"distbound/internal/pointstore"
	"distbound/internal/pool"
	"distbound/internal/raster"
)

// PointIdxJoiner answers the §5 aggregation join against a resident point
// dataset instead of a streamed PointSet. The point side is a
// pointstore.Mutable — an SFC-sorted base column under a RadixSpline learned
// index with prefix-sum and block min/max columns, plus an unsorted delta
// tail and tombstone set for points appended or deleted since the last
// compaction — and each region is covered once by its conservative
// distance-bounded hierarchical raster, kept as merged 1D leaf ranges.
//
// A query loads one immutable snapshot of the dataset and, per region, folds
// the base's range aggregates over the region's cover ranges (tombstones
// subtracted) and brute-scans the delta tail against the same ranges. The
// result is therefore exactly what a freshly compacted store would return:
// COUNT/MIN/MAX are bit-identical to a full rebuild of the surviving points,
// SUM/AVG agree up to float re-association (the delta tail sums in append
// order rather than key order).
//
// COUNT results are bit-identical to ACTJoiner.Aggregate over the same live
// points at the same bound: both sides test the same leaf positions against
// the same conservative covers.
//
// The covers depend only on the regions, domain, curve and bound — never on
// the data — so one joiner stays valid across appends, deletes and
// compactions of its dataset.
type PointIdxJoiner struct {
	src    *pointstore.Mutable
	covers [][]raster.PosRange // merged leaf ranges per region
	bound  float64
	ranges int

	// plan is the global cover plan (coverplan.go): all (region, range)
	// pairs flattened into one sorted, deduplicated range list with region
	// postings, plus the sorted boundary-key list one monotone sweep
	// resolves. spans publishes the plan's current span resolution — shared
	// by every query against one base, re-resolved incrementally when a
	// compaction installs a new one. scratch recycles the per-query
	// workspace sized for the plan.
	plan    *coverPlan
	spans   atomic.Pointer[resolvedSpans]
	scratch sync.Pool
}

// NewPointIdxJoiner rasterizes every region at distance bound eps over the
// dataset's domain and curve, fanning the per-region rasterization across
// workers (≤ 0 selects GOMAXPROCS). The returned joiner is immutable and
// safe for concurrent use; it reads a fresh snapshot of the dataset on every
// Aggregate call.
//
//distbound:allow-background context-free convenience over NewPointIdxJoinerCtx; callers hold no context to thread
func NewPointIdxJoiner(regions []geom.Region, src *pointstore.Mutable, eps float64, workers int) (*PointIdxJoiner, error) {
	return NewPointIdxJoinerCtx(context.Background(), regions, src, eps, workers)
}

// NewPointIdxJoinerCtx is NewPointIdxJoiner under a context: canceling ctx
// abandons the per-region cover rasterization between regions and returns
// ctx.Err(), so a build nobody waits for anymore stops burning CPU.
func NewPointIdxJoinerCtx(ctx context.Context, regions []geom.Region, src *pointstore.Mutable, eps float64, workers int) (*PointIdxJoiner, error) {
	if !(eps > 0) {
		return nil, fmt.Errorf("join: point-index join requires a positive bound, got %v", eps)
	}
	j := &PointIdxJoiner{
		src:    src,
		covers: make([][]raster.PosRange, len(regions)),
		bound:  eps,
	}
	d, c := src.Domain(), src.Curve()
	err := pool.RunCtx(ctx, len(regions), pool.Workers(workers, len(regions)), func(_, ri int) error {
		a, err := raster.Hierarchical(regions[ri], d, c, eps, raster.Conservative)
		if err != nil {
			return err
		}
		j.covers[ri] = a.Ranges()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, rs := range j.covers {
		j.ranges += len(rs)
	}
	j.plan = buildCoverPlan(j.covers)
	numReg, hasW, plan := len(regions), src.HasWeights(), j.plan
	j.scratch.New = func() any { return plan.newScratch(numReg, hasW) }
	return j, nil
}

// Bound returns the distance bound the covers guarantee.
func (j *PointIdxJoiner) Bound() float64 { return j.bound }

// NumRanges returns the total number of per-region merged cover ranges —
// what the per-region reference execution probes.
func (j *PointIdxJoiner) NumRanges() int { return j.ranges }

// NumUniqueRanges returns the size of the deduplicated global range list —
// what the cover-plan execution probes.
func (j *PointIdxJoiner) NumUniqueRanges() int { return len(j.plan.uniq) }

// NumBoundaryProbes returns how many distinct span boundaries one query
// resolves against the key column — the monotone sweep's length.
func (j *PointIdxJoiner) NumBoundaryProbes() int { return len(j.plan.bkeys) }

// UniqueRanges returns the cover plan's deduplicated global range list,
// sorted by (Lo, Hi) ascending — the key intervals a query at this joiner's
// bound can ever touch, which is what a shard router intersects against its
// shards' key boundaries. The slice is the plan's own backing storage;
// callers must treat it as read-only.
func (j *PointIdxJoiner) UniqueRanges() []raster.PosRange { return j.plan.uniq }

// MemoryBytes returns the cover artifact's footprint — the per-region
// ranges (16 bytes each), the global cover plan, and the current span
// resolution if one is published — excluding the shared dataset.
func (j *PointIdxJoiner) MemoryBytes() int {
	n := 16*j.ranges + j.plan.memoryBytes()
	if rs := j.spans.Load(); rs != nil {
		n += rs.memoryBytes()
	}
	return n
}

// validate mirrors PointSet.validate for the resident dataset.
func (j *PointIdxJoiner) validate(agg Agg) error {
	if agg != Count && !j.src.HasWeights() {
		return fmt.Errorf("join: %v requires a weight column", agg)
	}
	return nil
}

// validateAggs checks a whole aggregate set against the dataset's weight
// column.
func (j *PointIdxJoiner) validateAggs(aggs []Agg) error {
	if len(aggs) == 0 {
		return fmt.Errorf("join: no aggregates requested")
	}
	for _, a := range aggs {
		if err := j.validate(a); err != nil {
			return err
		}
	}
	return nil
}

// Aggregate answers the aggregation for every region by probing the learned
// index over the region's cover ranges.
func (j *PointIdxJoiner) Aggregate(agg Agg) (Result, error) {
	return j.AggregateParallel(agg, 1)
}

// AggregateParallel is Aggregate sharded across workers (≤ 0 selects
// GOMAXPROCS) by region. One snapshot is loaded up front, so every region of
// one call sees the same instant of the dataset; every region is computed
// wholly by one worker, so results — including float sums — are identical
// for any worker count.
//
//distbound:allow-background context-free convenience over AggregateMulti; callers hold no context to thread
func (j *PointIdxJoiner) AggregateParallel(agg Agg, workers int) (Result, error) {
	rs, err := j.AggregateMulti(context.Background(), []Agg{agg}, workers)
	if err != nil {
		return Result{}, err
	}
	return rs[0], nil
}

// aggregateRegion folds the snapshot's base range aggregates over one
// region's cover ranges and brute-scans the delta tail against them, writing
// only that region's slots of every result. Each Span is located once and
// every needed aggregate folds from it — the shared-lookup economy of the
// multi-aggregate path.
//
//distbound:noalloc
func (j *PointIdxJoiner) aggregateRegion(snap *pointstore.Snapshot, results []Result, needs aggNeeds, ri int) {
	var cnt int64
	var sum float64
	mn, mx := math.Inf(1), math.Inf(-1)
	ranges := j.covers[ri]
	for _, r := range ranges {
		lo, hi := snap.Span(r.Lo, r.Hi)
		if lo >= hi {
			continue
		}
		cnt += int64(snap.CountSpan(lo, hi))
		if needs.sum {
			sum += snap.SumSpan(lo, hi)
		}
		if needs.min {
			mn = math.Min(mn, snap.MinSpan(lo, hi))
		}
		if needs.max {
			mx = math.Max(mx, snap.MaxSpan(lo, hi))
		}
	}
	// Delta scan: every live delta row whose key falls in one of the
	// region's cover ranges contributes exactly as a base row would.
	for k, dn := 0, snap.DeltaLen(); k < dn; k++ {
		if !snap.DeltaLive(k) || !coversKey(ranges, snap.DeltaKey(k)) {
			continue
		}
		cnt++
		if needs.sum || needs.min || needs.max {
			w := snap.DeltaWeight(k)
			if needs.sum {
				sum += w
			}
			if needs.min {
				mn = math.Min(mn, w)
			}
			if needs.max {
				mx = math.Max(mx, w)
			}
		}
	}
	for k := range results {
		results[k].Counts[ri] = cnt
		if results[k].Sums != nil {
			results[k].Sums[ri] = sum
		}
		if results[k].Extremes != nil {
			if results[k].Agg == Min {
				results[k].Extremes[ri] = mn
			} else {
				results[k].Extremes[ri] = mx
			}
		}
	}
}

// coversKey reports whether a leaf key falls in one of the merged, sorted
// cover ranges — binary search, mirroring Approximation.CoversLeafPos.
//
//distbound:noalloc
func coversKey(ranges []raster.PosRange, key uint64) bool {
	i := sort.Search(len(ranges), func(i int) bool { return ranges[i].Hi >= key })
	return i < len(ranges) && ranges[i].Lo <= key
}
