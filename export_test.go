package distbound

import "context"

// runDataset executes one dataset query on a fixed strategy — the hook the
// differential and mutable-dataset tests use to pin every strategy against
// every other on the same mutated dataset. It lives in a _test file because
// production callers all route through Do/executeMulti; keeping it here
// means there is exactly one execution path to diverge from (none).
func (e *Engine) runDataset(ds *Dataset, agg Agg, bound float64, strategy Strategy, workers int) (Result, error) {
	var resp Response
	err := e.executeMulti(context.Background(),
		Request{Dataset: ds, Aggs: []Agg{agg}, Bound: bound}, strategy, workers, &resp)
	if err != nil {
		return Result{}, err
	}
	return resp.Results[0], nil
}
