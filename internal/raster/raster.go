// Package raster implements the paper's central artifact: distance-bounded
// raster approximations of arbitrary regions (§2.1–§2.2).
//
// A region is approximated by a set of grid cells, split into interior cells
// (fully contained in the region, any size) and boundary cells (overlapping
// the region boundary). When the boundary cells have side length at most
// ε/√2 — diagonal at most ε — the Hausdorff distance between the region and
// the cell union is at most ε:
//
//   - Conservative approximations include every cell that intersects the
//     region, so they admit no false negatives; false positives lie within ε
//     of the boundary.
//   - Centroid (non-conservative, GPU-rasterization-style) approximations
//     include the cells whose center is inside, admitting both error kinds,
//     each still within ε of the boundary.
//
// Two constructions are provided: Uniform (all cells at one level, Figure
// 1(b)) and Hierarchical (variable-sized cells, Figure 1(c)), plus a
// budgeted cover that trades cell count for precision (the 32/128/512
// cells-per-polygon precision levels of Figure 4).
package raster

import (
	"fmt"
	"math"
	"sort"

	"distbound/internal/geom"
	"distbound/internal/sfc"
)

// Mode selects the boundary-cell policy of an approximation.
type Mode int

const (
	// Conservative includes every cell that intersects the region: only
	// false positives are possible.
	Conservative Mode = iota
	// Centroid includes the cells whose center lies in the region, the
	// sampling rule of GPU rasterization: both false positives and false
	// negatives are possible, each within the distance bound.
	Centroid
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Conservative {
		return "conservative"
	}
	return "centroid"
}

// PosRange is an inclusive range of MaxLevel curve positions.
type PosRange struct {
	Lo, Hi uint64
}

// Len returns the number of leaf positions in the range.
func (r PosRange) Len() uint64 { return r.Hi - r.Lo + 1 }

// Contains reports whether pos falls in the range.
func (r PosRange) Contains(pos uint64) bool { return r.Lo <= pos && pos <= r.Hi }

// Approximation is a raster approximation of a region: a set of interior and
// boundary cells over a Domain/Curve grid. It implements geom.RegionSet so
// that the guaranteed distance bound can be verified against the original
// geometry with geom.HausdorffDist.
type Approximation struct {
	Domain sfc.Domain
	Curve  sfc.Curve
	// Interior cells are fully contained in the region. They may be coarser
	// than the distance bound requires, since they contribute no error.
	Interior []sfc.CellID
	// Boundary cells overlap the region boundary; their diagonal determines
	// the approximation error.
	Boundary []sfc.CellID

	ranges []PosRange // cached merged leaf ranges of Interior ∪ Boundary
}

// NumCells returns the total number of cells.
func (a *Approximation) NumCells() int { return len(a.Interior) + len(a.Boundary) }

// Cells returns all cells (interior first, then boundary). The returned
// slice is shared for reading; callers must not modify it.
func (a *Approximation) Cells() []sfc.CellID {
	out := make([]sfc.CellID, 0, a.NumCells())
	out = append(out, a.Interior...)
	return append(out, a.Boundary...)
}

// MaxCellDiagonal returns the largest diagonal among boundary cells — the
// guaranteed Hausdorff bound of the approximation. It returns 0 when there
// are no boundary cells (the approximation is exact).
func (a *Approximation) MaxCellDiagonal() float64 {
	var d float64
	for _, id := range a.Boundary {
		if v := a.Domain.CellDiagonal(id.Level()); v > d {
			d = v
		}
	}
	return d
}

// Ranges returns the merged, sorted leaf-position ranges covered by the
// approximation. These are the 1D intervals a point index probes to answer
// a containment query on the approximation (§3). The result is cached.
func (a *Approximation) Ranges() []PosRange {
	if a.ranges != nil {
		return a.ranges
	}
	raw := make([]PosRange, 0, a.NumCells())
	for _, id := range a.Interior {
		lo, hi := id.LeafPosRange()
		raw = append(raw, PosRange{lo, hi})
	}
	for _, id := range a.Boundary {
		lo, hi := id.LeafPosRange()
		raw = append(raw, PosRange{lo, hi})
	}
	a.ranges = MergeRanges(raw)
	return a.ranges
}

// MergeRanges sorts and coalesces overlapping or adjacent ranges.
func MergeRanges(rs []PosRange) []PosRange {
	if len(rs) == 0 {
		return nil
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Lo < rs[j].Lo })
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if r.Lo <= last.Hi+1 && last.Hi+1 != 0 { // adjacent or overlapping
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// CoversLeafPos reports whether a MaxLevel curve position falls in the
// approximation, by binary search over the merged ranges.
func (a *Approximation) CoversLeafPos(pos uint64) bool {
	rs := a.Ranges()
	i := sort.Search(len(rs), func(i int) bool { return rs[i].Hi >= pos })
	return i < len(rs) && rs[i].Contains(pos)
}

// ContainsPoint reports whether p falls in a cell of the approximation.
// This is the approximate containment test that replaces the exact PIP test.
func (a *Approximation) ContainsPoint(p geom.Point) bool {
	pos, ok := a.Domain.LeafPos(a.Curve, p)
	if !ok {
		return false
	}
	return a.CoversLeafPos(pos)
}

// DistToPoint returns the distance from p to the union of cells (0 when
// covered). Linear in the cell count; intended for verification, not for
// query processing.
func (a *Approximation) DistToPoint(p geom.Point) float64 {
	if a.ContainsPoint(p) {
		return 0
	}
	d := math.Inf(1)
	scan := func(ids []sfc.CellID) {
		for _, id := range ids {
			if v := a.Domain.CellIDRect(a.Curve, id).DistToPoint(p); v < d {
				d = v
			}
		}
	}
	scan(a.Interior)
	scan(a.Boundary)
	return d
}

// BoundarySamples returns points sampled on the outline of the cell union at
// the given step, used to estimate the Hausdorff distance from the
// approximation to the region. Cell edges interior to the union contribute
// samples too; those have distance 0 to the union and only slacken the
// estimate on the region side, never the bound check.
func (a *Approximation) BoundarySamples(step float64) []geom.Point {
	var out []geom.Point
	for _, id := range append(append([]sfc.CellID{}, a.Interior...), a.Boundary...) {
		r := a.Domain.CellIDRect(a.Curve, id)
		for _, e := range r.Edges() {
			out = append(out, geom.SampleRingBoundary(geom.Ring{e.A, e.B}, step)...)
		}
	}
	return out
}

// Area returns the summed area of all cells — an upper bound on the region
// area for conservative approximations.
func (a *Approximation) Area() float64 {
	var s float64
	for _, id := range a.Interior {
		side := a.Domain.CellSide(id.Level())
		s += side * side
	}
	for _, id := range a.Boundary {
		side := a.Domain.CellSide(id.Level())
		s += side * side
	}
	return s
}

// MemoryBytes estimates the in-memory footprint of the cell list (8 bytes
// per 64-bit cell ID), the figure the paper reports when comparing ACT, SI
// and R-tree storage costs.
func (a *Approximation) MemoryBytes() int { return 8 * a.NumCells() }

// String implements fmt.Stringer.
func (a *Approximation) String() string {
	return fmt.Sprintf("raster{interior=%d boundary=%d dH≤%.3g}",
		len(a.Interior), len(a.Boundary), a.MaxCellDiagonal())
}

var _ geom.RegionSet = (*Approximation)(nil)
