// Package rs implements RadixSpline (Kipf et al., aiDM@SIGMOD'20), the
// single-pass learned index that §3 of the paper builds over linearized cell
// keys: a greedy error-bounded linear spline over the key→position CDF plus
// a radix table that narrows the spline segment search. Lookups interpolate
// the spline to predict a position and correct it with a binary search in a
// window of ± the spline error — so COUNT over a cell range costs two
// narrow searches instead of two full binary searches.
package rs

import (
	"math"
	"math/bits"
)

// Default parameters; Figure 4 uses 25 radix bits and spline error 32.
const (
	DefaultRadixBits   = 18
	DefaultSplineError = 32
)

type splinePoint struct {
	key uint64
	pos int
}

// RadixSpline is an immutable learned index over a sorted key column. It
// shares the key slice with its builder (no copy).
type RadixSpline struct {
	keys   []uint64
	spline []splinePoint
	table  []int32
	shift  uint
	minKey uint64
	maxErr int
}

// Build constructs a RadixSpline over keys, which must be sorted ascending
// (duplicates allowed). radixBits ≤ 0 or splineErr ≤ 0 select the defaults.
// Building is a single pass over the keys.
func Build(keys []uint64, radixBits, splineErr int) *RadixSpline {
	if radixBits <= 0 {
		radixBits = DefaultRadixBits
	}
	if splineErr <= 0 {
		splineErr = DefaultSplineError
	}
	r := &RadixSpline{keys: keys, maxErr: splineErr}
	if len(keys) == 0 {
		r.table = []int32{0, 0}
		return r
	}
	r.minKey = keys[0]
	r.buildSpline(splineErr)
	r.buildRadixTable(radixBits)
	return r
}

// buildSpline runs the greedy spline corridor algorithm over the CDF points
// (key, first position of key).
func (r *RadixSpline) buildSpline(maxErr int) {
	n := len(r.keys)
	emit := func(p splinePoint) { r.spline = append(r.spline, p) }

	emit(splinePoint{r.keys[0], 0})
	if n == 1 {
		return
	}

	base := r.spline[0]
	var upper, lower splinePoint // corridor control points
	havePrev := false
	var prev splinePoint

	process := func(key uint64, pos int) {
		if !havePrev {
			prev = splinePoint{key, pos}
			upper = splinePoint{key, pos + maxErr}
			lower = splinePoint{key, maxInt(pos-maxErr, 0)}
			havePrev = true
			return
		}
		// Slopes from the base spline point.
		upperSlope := slope(base, upper)
		lowerSlope := slope(base, lower)
		curSlope := slope(base, splinePoint{key, pos})
		if curSlope > upperSlope || curSlope < lowerSlope {
			// The corridor is violated: the previous CDF point becomes a
			// spline point and the corridor restarts from it.
			emit(prev)
			base = prev
			upper = splinePoint{key, pos + maxErr}
			lower = splinePoint{key, maxInt(pos-maxErr, 0)}
			prev = splinePoint{key, pos}
			return
		}
		// Narrow the corridor.
		if s := slope(base, splinePoint{key, pos + maxErr}); s < upperSlope {
			upper = splinePoint{key, pos + maxErr}
		}
		if s := slope(base, splinePoint{key, maxInt(pos-maxErr, 0)}); s > lowerSlope {
			lower = splinePoint{key, maxInt(pos-maxErr, 0)}
		}
		prev = splinePoint{key, pos}
	}

	for i := 1; i < n; i++ {
		if r.keys[i] == r.keys[i-1] {
			continue // CDF uses the first position of each distinct key
		}
		process(r.keys[i], i)
	}
	// Always terminate with the last distinct key so interpolation covers
	// the full domain.
	last := splinePoint{r.keys[n-1], lastFirstPos(r.keys)}
	if r.spline[len(r.spline)-1].key != last.key {
		if havePrev && prev.key != last.key {
			// prev is an interior point that may still be needed: the greedy
			// corridor guarantees error only for points up to prev when prev
			// is emitted, so emit it if the final segment would violate the
			// corridor. Emitting unconditionally costs at most one extra
			// point and preserves the bound.
			emit(prev)
		}
		emit(last)
	}
}

// lastFirstPos returns the position of the first occurrence of the final
// key.
func lastFirstPos(keys []uint64) int {
	n := len(keys)
	i := n - 1
	for i > 0 && keys[i-1] == keys[n-1] {
		i--
	}
	return i
}

func slope(a, b splinePoint) float64 {
	return float64(b.pos-a.pos) / float64(b.key-a.key)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// buildRadixTable fills table[p] = index of the first spline point whose
// shifted key is ≥ p, so segment search for a key starts at
// table[prefix(key)] and ends at table[prefix(key)+1].
func (r *RadixSpline) buildRadixTable(radixBits int) {
	// Cap the table at roughly one slot per key: more slots than keys buys
	// nothing and would make the index larger than the column on small data.
	if nBits := bits.Len64(uint64(len(r.keys))); radixBits > nBits {
		radixBits = nBits
	}
	keyBits := bits.Len64(r.keys[len(r.keys)-1] - r.minKey)
	if keyBits > radixBits {
		r.shift = uint(keyBits - radixBits)
	}
	size := (r.keys[len(r.keys)-1]-r.minKey)>>r.shift + 2
	r.table = make([]int32, size+1)
	prev := uint64(0)
	for i, sp := range r.spline {
		p := (sp.key - r.minKey) >> r.shift
		for j := prev + 1; j <= p; j++ {
			r.table[j] = int32(i)
		}
		prev = p
	}
	for j := prev + 1; j < uint64(len(r.table)); j++ {
		r.table[j] = int32(len(r.spline))
	}
}

// predict returns the interpolated position estimate for key, which must be
// within [minKey, maxKey].
func (r *RadixSpline) predict(key uint64) int {
	p := (key - r.minKey) >> r.shift
	lo, hi := int(r.table[p]), int(r.table[p+1])
	// The segment containing key is bounded by the spline points around it;
	// binary search the narrowed window for the first spline key > key.
	if lo > 0 {
		lo--
	}
	if hi > len(r.spline) {
		hi = len(r.spline)
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if r.spline[mid].key <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// lo is the first spline index with key > target; segment is [lo-1, lo].
	if lo == 0 {
		return r.spline[0].pos
	}
	if lo == len(r.spline) {
		return r.spline[len(r.spline)-1].pos
	}
	a, b := r.spline[lo-1], r.spline[lo]
	t := float64(key-a.key) / float64(b.key-a.key)
	return a.pos + int(math.Round(t*float64(b.pos-a.pos)))
}

// LowerBound returns the index of the first key ≥ k.
func (r *RadixSpline) LowerBound(k uint64) int {
	n := len(r.keys)
	if n == 0 || k <= r.minKey {
		return 0
	}
	if k > r.keys[n-1] {
		return n
	}
	est := r.predict(k)
	// Correct within the error window (+1 guards the rounding of the
	// interpolation itself).
	lo := maxInt(est-r.maxErr-1, 0)
	hi := est + r.maxErr + 1
	if hi > n {
		hi = n
	}
	// The window is a guarantee for keys present in the column; grow it
	// defensively if the target escaped (never happens when the corridor
	// invariant holds, but costs nothing to keep lookups correct).
	for lo > 0 && r.keys[lo] >= k {
		lo = maxInt(lo-r.maxErr, 0)
	}
	for hi < n && r.keys[hi-1] < k {
		hi = minInt(hi+r.maxErr, n)
	}
	// Binary search within [lo, hi).
	for lo < hi {
		mid := (lo + hi) / 2
		if r.keys[mid] >= k {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// UpperBound returns the index of the first key > k.
func (r *RadixSpline) UpperBound(k uint64) int {
	if k == math.MaxUint64 {
		return len(r.keys)
	}
	return r.LowerBound(k + 1)
}

// CountRange returns the number of keys in the inclusive range [lo, hi] —
// the aggregation primitive of §3 (two spline lookups).
func (r *RadixSpline) CountRange(lo, hi uint64) int {
	if lo > hi {
		return 0
	}
	return r.UpperBound(hi) - r.LowerBound(lo)
}

// NumSplinePoints reports the spline size (for ablation reporting).
func (r *RadixSpline) NumSplinePoints() int { return len(r.spline) }

// MemoryBytes reports the index footprint excluding the shared key column.
func (r *RadixSpline) MemoryBytes() int {
	return 16*len(r.spline) + 4*len(r.table)
}
