package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"distbound/internal/geom"
	"distbound/internal/pointstore"
	"distbound/internal/sfc"
)

// updateGolden regenerates the pinned byte images. Run
//
//	go test ./internal/pointstore/persist -run TestGolden -update-golden
//
// ONLY alongside a formatVersion bump: these files are the compatibility
// contract, and an unintended diff here means existing stores on disk
// would stop opening.
var updateGolden = flag.Bool("update-golden", false, "rewrite golden format images")

// goldenStore is a fixed four-point weighted relation whose snapshot bytes
// must never change within a format version.
func goldenStore(t testing.TB) *pointstore.Mutable {
	t.Helper()
	pts := []geom.Point{
		{X: 12.5, Y: 800},
		{X: 512, Y: 512},
		{X: 1000.25, Y: 3},
		{X: 0, Y: 0},
	}
	ws := []float64{1.5, -2, 0, 1024}
	m, err := pointstore.NewMutable(pts, ws, tdom, sfc.Hilbert{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(hex.Dump(got)), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden image missing (run with -update-golden after a DELIBERATE format change): %v", err)
	}
	if !bytes.Equal([]byte(hex.Dump(got)), want) {
		t.Fatalf("%s: on-disk bytes diverged from the pinned v%d image.\n"+
			"If this is a deliberate format change, bump formatVersion and regenerate with -update-golden.\ngot:\n%s",
			name, formatVersion, hex.Dump(got))
	}
}

// TestGoldenSnapshotBytes pins the exact snapshot image — header fields at
// their documented offsets, the section table, and the full file — so any
// layout drift within format version 1 fails loudly.
func TestGoldenSnapshotBytes(t *testing.T) {
	m := goldenStore(t)
	var buf memWriteFile
	meta := snapMetaFor(m)
	if _, err := writeSnapshot(&buf, meta, m.Snapshot().BaseColumns()); err != nil {
		t.Fatal(err)
	}
	b := buf.data

	u32 := func(off int) uint32 { return binary.LittleEndian.Uint32(b[off:]) }
	u64 := func(off int) uint64 { return binary.LittleEndian.Uint64(b[off:]) }
	f64 := func(off int) float64 { return math.Float64frombits(u64(off)) }
	if string(b[0:4]) != "DBPS" {
		t.Fatalf("magic %q", b[0:4])
	}
	if u32(4) != 1 {
		t.Fatalf("version %d at offset 4, want 1", u32(4))
	}
	if u64(8) != meta.gen {
		t.Fatalf("generation %d at offset 8, want %d", u64(8), meta.gen)
	}
	if u64(16) != 4 {
		t.Fatalf("nextID %d at offset 16, want 4", u64(16))
	}
	if u64(24) != 0 {
		t.Fatalf("dropped %d at offset 24, want 0", u64(24))
	}
	if u64(32) != 4 {
		t.Fatalf("rows %d at offset 32, want 4", u64(32))
	}
	if u32(40) != flagHasWeights {
		t.Fatalf("flags %#x at offset 40, want %#x", u32(40), flagHasWeights)
	}
	if u32(44) != 7 {
		t.Fatalf("section count %d at offset 44, want 7", u32(44))
	}
	if f64(48) != 0 || f64(56) != 0 || f64(64) != 1024 {
		t.Fatalf("domain (%g, %g, %g) at offset 48, want (0, 0, 1024)", f64(48), f64(56), f64(64))
	}
	if b[72] != 0 {
		t.Fatalf("curve id %d at offset 72, want 0 (hilbert)", b[72])
	}

	// Section table: ids 1..7 in order, 8-aligned offsets, documented sizes
	// for 4 rows in 1 block.
	wantSize := map[uint32]uint64{1: 32, 2: 32, 3: 64, 4: 32, 5: 40, 6: 8, 7: 8}
	for i := 0; i < 7; i++ {
		e := headerFixedSize + i*sectionEntrySize
		id, off, size := u32(e), u64(e+8), u64(e+16)
		if id != uint32(i+1) {
			t.Fatalf("table entry %d: section id %d, want %d", i, id, i+1)
		}
		if off%8 != 0 || off+size > uint64(len(b)) {
			t.Fatalf("section %d: bad extent [%d, +%d) in %d bytes", id, off, size, len(b))
		}
		if size != wantSize[id] {
			t.Fatalf("section %d: size %d, want %d", id, size, wantSize[id])
		}
	}
	checkGolden(t, "golden_v1.snap.hexdump", b)

	// The image must round-trip, proving the pin is of a valid snapshot.
	meta2, secs, err := parseSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	if meta2 != meta {
		t.Fatalf("round-trip header %+v, want %+v", meta2, meta)
	}
	if len(secs) != 7 {
		t.Fatalf("round-trip found %d sections", len(secs))
	}
}

// TestGoldenWALBytes pins the log header and one append + one delete record
// for a weighted store.
func TestGoldenWALBytes(t *testing.T) {
	b := validWAL(true)

	if string(b[0:4]) != "DBWL" {
		t.Fatalf("magic %q", b[0:4])
	}
	if binary.LittleEndian.Uint32(b[4:]) != 1 {
		t.Fatalf("version %d, want 1", binary.LittleEndian.Uint32(b[4:]))
	}
	if binary.LittleEndian.Uint64(b[8:]) != 7 {
		t.Fatalf("generation %d, want 7", binary.LittleEndian.Uint64(b[8:]))
	}
	// First record: append of 2 weighted points = 8-byte frame + op byte +
	// u32 count + 2×24 bytes.
	if got := binary.LittleEndian.Uint32(b[24:]); got != 5+48 {
		t.Fatalf("first record payload length %d, want %d", got, 5+48)
	}
	if b[32] != walOpAppend || binary.LittleEndian.Uint32(b[33:]) != 2 {
		t.Fatalf("first record op %d count %d, want append of 2", b[32], binary.LittleEndian.Uint32(b[33:]))
	}
	checkGolden(t, "golden_v1.wal.hexdump", b)

	recs, valid := decodeWAL(b, true)
	if len(recs) != 2 || valid != int64(len(b)) {
		t.Fatalf("pinned log decodes to %d records, %d/%d bytes", len(recs), valid, len(b))
	}
}

// TestGoldenFileName pins the log naming contract OpenDataset relies on to
// pair a snapshot generation with its log.
func TestGoldenFileName(t *testing.T) {
	if got := WALName(0x1f); got != "wal-000000000000001f.log" {
		t.Fatalf("WALName(0x1f) = %q", got)
	}
	if SnapshotName != "base.snap" {
		t.Fatalf("SnapshotName = %q", SnapshotName)
	}
}
