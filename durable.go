// Engine-level durability: Dataset.Persist binds a registered dataset to an
// on-disk directory (checksummed snapshot + write-ahead log), and
// Engine.OpenDataset re-registers a persisted dataset after a restart,
// replaying the logged tail and — on supported platforms — serving the base
// columns straight out of the mapped snapshot file.
package distbound

import (
	"fmt"
	"time"

	"distbound/internal/pointstore/persist"
)

// PersistConfig tunes a dataset's durability; the zero value is a sound
// default (sync every mutation, mmap the snapshot where supported).
type PersistConfig struct {
	// GroupCommit batches write-ahead-log fsyncs: a mutation returns once
	// written, and the log syncs at most GroupCommit later. A crash may
	// lose the last unsynced window of mutations — recovery still lands on
	// a consistent earlier state, never a torn one. Zero or negative syncs
	// every mutation before acknowledging it.
	GroupCommit time.Duration
	// DisableMMap forces OpenDataset to copy the snapshot into the heap
	// instead of serving the base columns from the mapped file.
	DisableMMap bool

	// fs overrides the backing filesystem; nil selects the operating
	// system. Unexported: only the package's own tests inject the
	// fault-injecting implementation here.
	fs persist.FS
}

func (c PersistConfig) options() persist.Options {
	return persist.Options{FS: c.fs, GroupCommit: c.GroupCommit, DisableMMap: c.DisableMMap}
}

// Persist makes the dataset durable under dir: an immediate checkpoint
// writes the compacted base as a checksummed snapshot, and every later
// Append/Delete is write-ahead logged, so OpenDataset after a crash or
// restart recovers exactly the acknowledged state. Each subsequent
// compaction — manual or threshold-triggered — checkpoints: the merged base
// replaces the snapshot atomically and the log is retired.
//
// Mutations racing the Persist call itself may miss the log and become
// durable only at the next checkpoint; quiesce writers across the call for
// a strict cutover. Persisting an already durable dataset is an error.
func (d *Dataset) Persist(dir string, cfg PersistConfig) error {
	if d.dur.Load() != nil {
		return fmt.Errorf("distbound: dataset %q is already durable", d.name)
	}
	dur, err := persist.Create(dir, d.src, cfg.options())
	if err != nil {
		return fmt.Errorf("distbound: persisting dataset %q: %w", d.name, err)
	}
	if !d.dur.CompareAndSwap(nil, dur) {
		dur.Close() //nolint:errcheck // lost the race; nothing was logged yet
		return fmt.Errorf("distbound: dataset %q is already durable", d.name)
	}
	return nil
}

// Sync forces any group-committed log records of a durable dataset to
// stable storage now; it is a no-op for non-durable datasets.
func (d *Dataset) Sync() error {
	if dur := d.dur.Load(); dur != nil {
		return dur.Sync()
	}
	return nil
}

// OpenDataset recovers the dataset persisted under dir and registers it as
// name: the snapshot is validated (magic, version, every section checksum)
// and loaded — mmap'd and served zero-copy on supported platforms — and the
// write-ahead log's acknowledged tail is replayed on top, reproducing the
// exact pre-shutdown columns and point IDs. The recovered dataset stays
// durable: mutations keep logging to dir, compactions checkpoint.
//
// The persisted dataset must have been linearized over this engine's domain
// and curve — covers computed here would otherwise probe foreign keys — so
// opening a dataset persisted by an engine over a different region set is
// an error. Cover artifacts are keyed by store identity and thus start
// cold after a reopen; they rebuild on first use at each bound.
func (e *Engine) OpenDataset(name, dir string, cfg PersistConfig) (*Dataset, error) {
	if name == "" {
		return nil, fmt.Errorf("distbound: dataset name must be non-empty")
	}
	e.dsMu.RLock()
	_, dup := e.datasets[name]
	e.dsMu.RUnlock()
	if dup {
		return nil, fmt.Errorf("distbound: dataset %q already registered", name)
	}
	dur, err := persist.Open(dir, cfg.options())
	if err != nil {
		return nil, fmt.Errorf("distbound: opening dataset %q: %w", name, err)
	}
	src := dur.Mutable()
	if src.Domain() != e.domain || src.Curve().Name() != Hilbert.Name() {
		dur.Close() //nolint:errcheck // refusing the dataset; nothing was logged
		return nil, fmt.Errorf("distbound: dataset %q was persisted over domain (origin %v, size %g, curve %s); this engine's is (origin %v, size %g, curve %s)",
			name, src.Domain().Origin, src.Domain().Size, src.Curve().Name(),
			e.domain.Origin, e.domain.Size, Hilbert.Name())
	}
	ds := &Dataset{name: name, src: src}
	ds.dur.Store(dur)
	ds.compactThreshold.Store(DefaultCompactionThreshold)
	e.dsMu.Lock()
	defer e.dsMu.Unlock()
	if _, dup := e.datasets[name]; dup {
		dur.Close() //nolint:errcheck // refusing the dataset; nothing was logged
		return nil, fmt.Errorf("distbound: dataset %q already registered", name)
	}
	e.datasets[name] = ds
	return ds, nil
}
