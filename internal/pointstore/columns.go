// Columnar import/export hooks for the persistence layer: a snapshot's
// compacted base rendered as flat columns, and the inverse constructor that
// rebuilds a Mutable from columns read (or mmap'd) out of a snapshot file.
package pointstore

import (
	"fmt"

	"distbound/internal/geom"
	"distbound/internal/sfc"
)

// BaseColumns is the flat columnar view of a snapshot's base: exactly the
// payload a durable snapshot file carries. All slices are shared with the
// snapshot (or, on the reopen path, with an mmap'd file) and must be treated
// as read-only. Weights, Prefix, BlockMin and BlockMax are nil iff the
// dataset is weightless; otherwise len(Prefix) == len(Keys)+1 and the block
// columns hold ceil(len(Keys)/BlockSize) entries.
type BaseColumns struct {
	Keys []uint64
	IDs  []uint64
	Pts  []geom.Point

	Weights  []float64
	Prefix   []float64
	BlockMin []float64
	BlockMax []float64
}

// BaseColumns returns the snapshot's base columns. Tombstones and the delta
// tail are NOT represented: persistence checkpoints call this only after a
// compaction, when the base alone is the whole live dataset; other callers
// must account for s.Tombstones() and the delta themselves.
func (s *Snapshot) BaseColumns() BaseColumns {
	return BaseColumns{
		Keys: s.base.keys, IDs: s.baseIDs, Pts: s.basePts,
		Weights: s.base.weights, Prefix: s.base.prefix,
		BlockMin: s.base.blockMin, BlockMax: s.base.blockMax,
	}
}

// NextID returns the ID the next appended point will receive — persisted in
// a snapshot header so that WAL replay after a reopen reassigns exactly the
// IDs the original appends returned.
func (m *Mutable) NextID() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nextID
}

// NewMutableFromColumns rebuilds a Mutable around already-sorted,
// already-derived base columns — the reopen path of a persisted dataset. The
// columns are installed as generation gen with an empty delta and no
// tombstones; pin (an mmap handle, typically) is kept reachable for as long
// as any snapshot can alias the columns. Only structural validity is checked
// here — consistent lengths, strict (key, ID) order, IDs below nextID; byte-
// level integrity is the caller's contract (the persist layer admits no
// section whose checksum does not match).
func NewMutableFromColumns(cols BaseColumns, d sfc.Domain, c sfc.Curve, dropped int, nextID, gen uint64, pin any) (*Mutable, error) {
	n := len(cols.Keys)
	if len(cols.IDs) != n || len(cols.Pts) != n {
		return nil, fmt.Errorf("pointstore: column lengths disagree: %d keys, %d ids, %d points",
			n, len(cols.IDs), len(cols.Pts))
	}
	hasW := cols.Weights != nil
	if hasW {
		nb := (n + BlockSize - 1) / BlockSize
		if len(cols.Weights) != n || len(cols.Prefix) != n+1 ||
			len(cols.BlockMin) != nb || len(cols.BlockMax) != nb {
			return nil, fmt.Errorf("pointstore: derived column lengths disagree for %d rows: %d weights, %d prefix, %d/%d blocks",
				n, len(cols.Weights), len(cols.Prefix), len(cols.BlockMin), len(cols.BlockMax))
		}
	} else if cols.Prefix != nil || cols.BlockMin != nil || cols.BlockMax != nil {
		return nil, fmt.Errorf("pointstore: weightless columns carry derived columns")
	}
	for i := 0; i < n; i++ {
		if cols.IDs[i] >= nextID {
			return nil, fmt.Errorf("pointstore: row %d carries ID %d ≥ nextID %d", i, cols.IDs[i], nextID)
		}
		if i > 0 && (cols.Keys[i] < cols.Keys[i-1] ||
			(cols.Keys[i] == cols.Keys[i-1] && cols.IDs[i] <= cols.IDs[i-1])) {
			return nil, fmt.Errorf("pointstore: rows %d..%d break (key, ID) order", i-1, i)
		}
	}
	m := &Mutable{domain: d, curve: c, hasW: hasW, dropped: dropped, nextID: nextID}
	m.baseByID = buildIDIndex(cols.IDs, 0)
	m.deltaByID = map[uint64]int{}
	m.snap.Store(&Snapshot{
		base:    newStoreFromColumns(cols.Keys, cols.Weights, cols.Prefix, cols.BlockMin, cols.BlockMax, d, c, dropped, pin),
		baseIDs: cols.IDs,
		basePts: cols.Pts,
		gen:     gen,
	})
	return m, nil
}
