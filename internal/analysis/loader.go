package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// PkgPath is the import path ("distbound", "distbound/internal/join").
	PkgPath string
	// Dir is the package directory.
	Dir string
	// Fset maps positions for Files; shared across one Loader.
	Fset *token.FileSet
	// Files are the parsed non-test files.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info records type and object resolutions for Files.
	Info *types.Info
}

// Loader parses and type-checks module packages without export data: module
// imports resolve to source directories under the module root, and standard
// library imports type-check from GOROOT source via go/importer's "source"
// compiler — the only importer that works in a toolchain with neither
// installed .a files nor third-party dependencies.
type Loader struct {
	// Root is the absolute module root (the directory holding go.mod).
	Root string
	// ModulePath is the module's import path from go.mod.
	ModulePath string

	fset   *token.FileSet
	std    types.ImporterFrom
	pkgs   map[string]*types.Package
	loaded map[string]*Package
}

// NewLoader creates a loader for the module rooted at root. The module path
// is read from go.mod.
func NewLoader(root string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:       root,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:       map[string]*types.Package{},
		loaded:     map[string]*Package{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import resolves one import path: module-internal paths type-check from
// their source directory, everything else delegates to the standard-library
// source importer. Results are memoized, so shared dependencies type-check
// once per loader.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	p, err := l.std.ImportFrom(path, l.Root, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: importing %q: %w", path, err)
	}
	l.pkgs[path] = p
	return p, nil
}

// Load parses and type-checks the module package with the given import path,
// memoized per loader.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.loaded[path]; ok {
		return p, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	dir := filepath.Join(l.Root, filepath.FromSlash(rel))
	pkg, err := l.LoadDir(dir, path)
	if err != nil {
		return nil, err
	}
	l.loaded[path] = pkg
	l.pkgs[path] = pkg.Types
	return pkg, nil
}

// LoadDir parses the non-test .go files of one directory and type-checks
// them as the package with the given import path. Files excluded by their
// //go:build constraints or GOOS/GOARCH name suffixes for the current
// platform are skipped, matching the file set `go build` would compile —
// otherwise both halves of a platform pair (e.g. an mmap implementation
// and its stub) land in one package and redeclare each other. Callers
// outside the module tree (fixture runners) use it directly with an
// explicit path.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importerFunc(l.Import)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{PkgPath: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// PackageDirs walks the module tree and returns every directory containing
// at least one non-test .go file, skipping testdata, vendor, hidden and
// underscore-prefixed directories — the same set `go list ./...` would name.
func PackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// ImportPathForDir maps a directory under the module root to its import
// path.
func (l *Loader) ImportPathForDir(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// Run applies one analyzer to one loaded package, collecting diagnostics.
func Run(a *Analyzer, pkg *Package, moduleRoot string) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:   a,
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		TypesInfo:  pkg.Info,
		ModuleRoot: moduleRoot,
		report:     func(d Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.PkgPath, err)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
