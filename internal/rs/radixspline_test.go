package rs

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func refLowerBound(keys []uint64, k uint64) int {
	return sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
}

func sortedKeys(rng *rand.Rand, n int, mod uint64) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64() % mod
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func TestEmptyAndTiny(t *testing.T) {
	r := Build(nil, 0, 0)
	if r.LowerBound(5) != 0 || r.CountRange(0, 100) != 0 {
		t.Error("empty index misbehaves")
	}
	one := Build([]uint64{42}, 0, 0)
	if one.LowerBound(41) != 0 || one.LowerBound(42) != 0 || one.LowerBound(43) != 1 {
		t.Error("single-key lookups wrong")
	}
	two := Build([]uint64{10, 20}, 0, 0)
	for _, k := range []uint64{0, 10, 15, 20, 25} {
		if got, want := two.LowerBound(k), refLowerBound([]uint64{10, 20}, k); got != want {
			t.Errorf("LowerBound(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestLowerBoundMatchesBinarySearchUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keys := sortedKeys(rng, 100000, 1<<50)
	r := Build(keys, 0, 32)
	for trial := 0; trial < 5000; trial++ {
		k := rng.Uint64() % (1 << 50)
		if got, want := r.LowerBound(k), refLowerBound(keys, k); got != want {
			t.Fatalf("LowerBound(%d) = %d, want %d", k, got, want)
		}
	}
	// Probe exact keys too.
	for trial := 0; trial < 2000; trial++ {
		k := keys[rng.Intn(len(keys))]
		if got, want := r.LowerBound(k), refLowerBound(keys, k); got != want {
			t.Fatalf("exact LowerBound(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestLowerBoundSkewedAndDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Heavy duplicates plus clusters: a hard CDF for the spline.
	var keys []uint64
	for c := 0; c < 20; c++ {
		base := rng.Uint64() % (1 << 40)
		for i := 0; i < 2000; i++ {
			keys = append(keys, base+uint64(rng.Intn(50)))
		}
	}
	for i := 0; i < 5000; i++ {
		keys = append(keys, 77777) // massive duplicate run
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	r := Build(keys, 20, 16)
	for trial := 0; trial < 3000; trial++ {
		k := rng.Uint64() % (1 << 41)
		if got, want := r.LowerBound(k), refLowerBound(keys, k); got != want {
			t.Fatalf("LowerBound(%d) = %d, want %d", k, got, want)
		}
	}
	if got, want := r.CountRange(77777, 77777), 5000; got != want {
		t.Errorf("duplicate CountRange = %d, want %d", got, want)
	}
}

func TestSequentialKeys(t *testing.T) {
	keys := make([]uint64, 10000)
	for i := range keys {
		keys[i] = uint64(i) * 3
	}
	r := Build(keys, 0, 8)
	// A perfectly linear CDF needs only the two endpoint spline points.
	if r.NumSplinePoints() > 3 {
		t.Errorf("linear data produced %d spline points", r.NumSplinePoints())
	}
	for k := uint64(0); k < 30050; k += 7 {
		if got, want := r.LowerBound(k), refLowerBound(keys, k); got != want {
			t.Fatalf("LowerBound(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestCountRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	keys := sortedKeys(rng, 50000, 1<<30)
	r := Build(keys, 0, 32)
	for trial := 0; trial < 1000; trial++ {
		lo := rng.Uint64() % (1 << 30)
		hi := lo + rng.Uint64()%(1<<20)
		want := refLowerBound(keys, hi+1) - refLowerBound(keys, lo)
		if got := r.CountRange(lo, hi); got != want {
			t.Fatalf("CountRange(%d,%d) = %d, want %d", lo, hi, got, want)
		}
	}
	if r.CountRange(10, 5) != 0 {
		t.Error("inverted range not zero")
	}
}

func TestMaxKeyBoundary(t *testing.T) {
	keys := []uint64{0, 1, ^uint64(0) - 1, ^uint64(0)}
	r := Build(keys, 0, 4)
	if got := r.UpperBound(^uint64(0)); got != 4 {
		t.Errorf("UpperBound(max) = %d", got)
	}
	if got := r.CountRange(0, ^uint64(0)); got != 4 {
		t.Errorf("full range = %d", got)
	}
	if got := r.LowerBound(^uint64(0)); got != 3 {
		t.Errorf("LowerBound(max) = %d", got)
	}
}

func TestSplineErrorRespected(t *testing.T) {
	// The prediction error for present keys must be within the configured
	// corridor (plus interpolation rounding).
	rng := rand.New(rand.NewSource(4))
	keys := sortedKeys(rng, 200000, 1<<55)
	for _, maxErr := range []int{4, 32, 256} {
		r := Build(keys, 0, maxErr)
		worst := 0
		for trial := 0; trial < 5000; trial++ {
			i := rng.Intn(len(keys))
			k := keys[i]
			est := r.predict(k)
			want := refLowerBound(keys, k)
			diff := est - want
			if diff < 0 {
				diff = -diff
			}
			if diff > worst {
				worst = diff
			}
		}
		if worst > maxErr+1 {
			t.Errorf("maxErr=%d: observed prediction error %d", maxErr, worst)
		}
		t.Logf("maxErr=%d: spline points=%d, worst observed error=%d", maxErr, r.NumSplinePoints(), worst)
	}
}

func TestSplineSizeShrinksWithError(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	keys := sortedKeys(rng, 100000, 1<<50)
	small := Build(keys, 0, 4).NumSplinePoints()
	large := Build(keys, 0, 128).NumSplinePoints()
	if large >= small {
		t.Errorf("spline did not shrink: err=4 → %d points, err=128 → %d points", small, large)
	}
}

func TestQuickAgainstReference(t *testing.T) {
	f := func(raw []uint64, probe uint64) bool {
		sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
		r := Build(raw, 12, 8)
		return r.LowerBound(probe) == refLowerBound(raw, probe)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMemoryBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	keys := sortedKeys(rng, 10000, 1<<40)
	r := Build(keys, 16, 32)
	if r.MemoryBytes() <= 0 {
		t.Error("MemoryBytes must be positive")
	}
	// The index must be far smaller than the key column itself.
	if r.MemoryBytes() > 8*len(keys) {
		t.Errorf("index (%d B) larger than data (%d B)", r.MemoryBytes(), 8*len(keys))
	}
}
