package join

import (
	"math"

	"distbound/internal/geom"
)

// GridJoiner is the "accurate GPU Baseline" of §5.2 run on the CPU: points
// are bucketed into a uniform grid (1024² cells in the paper); for each
// region, the grid cells overlapping the region's bounding box are scanned
// and every point in them is refined with an exact PIP test.
type GridJoiner struct {
	bounds geom.Rect
	res    int
	cellW  float64
	cellH  float64
	// buckets[y*res+x] lists point indices.
	buckets [][]int32
	ps      PointSet
}

// DefaultGridResolution matches the paper's 1024² grid index.
const DefaultGridResolution = 1024

// NewGridJoiner buckets the points. resolution ≤ 0 selects the default.
func NewGridJoiner(ps PointSet, bounds geom.Rect, resolution int) *GridJoiner {
	if resolution <= 0 {
		resolution = DefaultGridResolution
	}
	j := &GridJoiner{
		bounds:  bounds,
		res:     resolution,
		cellW:   bounds.Width() / float64(resolution),
		cellH:   bounds.Height() / float64(resolution),
		buckets: make([][]int32, resolution*resolution),
		ps:      ps,
	}
	for i, p := range ps.Pts {
		x, y, ok := j.cellOf(p)
		if !ok {
			continue
		}
		j.buckets[y*j.res+x] = append(j.buckets[y*j.res+x], int32(i))
	}
	return j
}

func (j *GridJoiner) cellOf(p geom.Point) (int, int, bool) {
	if !j.bounds.ContainsPoint(p) {
		return 0, 0, false
	}
	x := int((p.X - j.bounds.Min.X) / j.cellW)
	y := int((p.Y - j.bounds.Min.Y) / j.cellH)
	if x >= j.res {
		x = j.res - 1
	}
	if y >= j.res {
		y = j.res - 1
	}
	return x, y, true
}

// Aggregate runs the exact grid-filtered join.
func (j *GridJoiner) Aggregate(regions []geom.Region, agg Agg) (Result, error) {
	if err := j.ps.validate(agg); err != nil {
		return Result{}, err
	}
	res := newResult(agg, len(regions))
	for ri, rg := range regions {
		bb := rg.Bounds().Intersection(j.bounds)
		if bb.IsEmpty() {
			continue
		}
		x0 := int(math.Floor((bb.Min.X - j.bounds.Min.X) / j.cellW))
		y0 := int(math.Floor((bb.Min.Y - j.bounds.Min.Y) / j.cellH))
		x1 := int(math.Floor((bb.Max.X - j.bounds.Min.X) / j.cellW))
		y1 := int(math.Floor((bb.Max.Y - j.bounds.Min.Y) / j.cellH))
		x1 = minI(x1, j.res-1)
		y1 = minI(y1, j.res-1)
		for y := y0; y <= y1; y++ {
			for x := x0; x <= x1; x++ {
				for _, pi := range j.buckets[y*j.res+x] {
					p := j.ps.Pts[pi]
					if rg.ContainsPoint(p) {
						res.add(ri, j.ps.weight(int(pi)))
					}
				}
			}
		}
	}
	return res, nil
}

// MemoryBytes estimates the bucket index footprint.
func (j *GridJoiner) MemoryBytes() int {
	b := 24 * len(j.buckets)
	for _, bk := range j.buckets {
		b += 4 * len(bk)
	}
	return b
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
