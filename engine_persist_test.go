package distbound

import (
	"context"
	"strings"
	"testing"

	"distbound/internal/data"
	"distbound/internal/geom"
	"distbound/internal/testutil"
	"distbound/internal/testutil/errorfs"
)

// persistFixture persists the mutated request fixture under a fresh
// directory and keeps mutating afterwards, so the on-disk state is a
// checkpointed base plus a live write-ahead-log tail of appends and
// deletes — the least convenient shape for recovery.
func persistFixture(t *testing.T, cfg PersistConfig) (*Engine, *Dataset, PointSet, string) {
	t.Helper()
	e, ds, ps := requestFixture(t)
	dir := t.TempDir()
	if err := ds.Persist(dir, cfg); err != nil {
		t.Fatal(err)
	}
	ids, err := ds.Append(ps.Pts[:300], ps.Weights[:300])
	if err != nil {
		t.Fatal(err)
	}
	ds.Delete(ids[:70]...)
	ds.Delete(20, 21, 22)
	return e, ds, ps, dir
}

// TestOpenDatasetServesIdenticalResults is the durability acceptance
// criterion at the query layer: an engine restarted from disk — snapshot
// plus replayed log tail — answers resident requests bit-identically to the
// pre-shutdown engine, for every strategy and several bounds, whether the
// base is mmap-served or heap-loaded.
func TestOpenDatasetServesIdenticalResults(t *testing.T) {
	for _, mode := range []struct {
		name string
		cfg  PersistConfig
	}{
		{"mmap", PersistConfig{}},
		{"fullload", PersistConfig{DisableMMap: true}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			e, ds, _, dir := persistFixture(t, mode.cfg)
			if err := ds.Sync(); err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()

			e2 := NewEngine(e.regions)
			ds2, err := e2.OpenDataset("req-recovered", dir, mode.cfg)
			if err != nil {
				t.Fatal(err)
			}
			st := ds2.Stats()
			if !st.Durable || st.RecoveryWall <= 0 {
				t.Fatalf("recovered dataset stats not durable: %+v", st)
			}
			if st.WALRecords != 3 {
				t.Errorf("recovered %d log records, the fixture wrote 3", st.WALRecords)
			}

			for _, strat := range []Strategy{StrategyExact, StrategyACT, StrategyBRJ, StrategyPointIdx} {
				strat := strat
				aggs := []Agg{Count, Sum, Avg, Min, Max}
				if strat == StrategyBRJ {
					aggs = []Agg{Count, Sum, Avg}
				}
				bounds := []float64{16, 64}
				if strat == StrategyExact || strat == StrategyPointIdx {
					bounds = []float64{4, 16, 64} // no raster cost: sweep finer
				}
				if raceEnabled {
					// The parity logic is identical per cell; one bound per
					// strategy keeps the root package inside CI's race budget.
					bounds = bounds[len(bounds)-1:]
				}
				for _, bound := range bounds {
					want, err := e.Do(ctx, Request{Dataset: ds, Aggs: aggs, Bound: bound, Strategy: &strat})
					if err != nil {
						t.Fatal(err)
					}
					got, err := e2.Do(ctx, Request{Dataset: ds2, Aggs: aggs, Bound: bound, Strategy: &strat})
					if err != nil {
						t.Fatalf("%v bound %g on recovered dataset: %v", strat, bound, err)
					}
					for k := range aggs {
						label := mode.name + " " + strat.String() + " " + aggs[k].String()
						testutil.CheckIdentical(t, label, want.Results[k], got.Results[k])
					}
				}
			}
		})
	}
}

// TestOpenDatasetMMapStats pins the honesty of the MMapped flag: on when
// the platform maps the snapshot, forced off by DisableMMap.
func TestOpenDatasetMMapStats(t *testing.T) {
	_, _, _, dir := persistFixture(t, PersistConfig{})
	e2 := NewEngine(dataRegions(92, 5, 5, 8))
	ds2, err := e2.OpenDataset("a", dir, PersistConfig{DisableMMap: true})
	if err != nil {
		t.Fatal(err)
	}
	if ds2.Stats().MMapped {
		t.Error("DisableMMap was ignored")
	}
	ds3, err := e2.OpenDataset("b", dir, PersistConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if st := ds3.Stats(); st.SnapshotBytes <= 0 {
		t.Errorf("snapshot bytes %d after reopen", st.SnapshotBytes)
	}
}

// TestPersistedWarmResidentAllocationFree extends the resident warm-path
// allocation gate across a restart: a reopened, mmap-served dataset must
// answer pinned point-index requests at zero allocations per call, base
// columns aliasing the mapped file the whole time.
func TestPersistedWarmResidentAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("the race detector randomizes sync.Pool reuse; allocation counts are meaningless under it")
	}
	_, ds, _, dir := persistFixture(t, PersistConfig{})
	if err := ds.Sync(); err != nil {
		t.Fatal(err)
	}
	e2 := NewEngine(dataRegions(92, 5, 5, 8))
	e2.SetWorkers(1)
	// The gate is about the executed warm path over the reopened base; a
	// result-cache hit would be trivially allocation-free.
	e2.SetResultCacheCapacity(0)
	ds2, err := e2.OpenDataset("req-recovered", dir, PersistConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ds2.Compact() // fold the replayed tail so the warm path is all base
	ctx := context.Background()
	pidx := StrategyPointIdx
	req := Request{Dataset: ds2, Aggs: []Agg{Count, Sum, Min}, Bound: 16, Repetitions: 100000, Strategy: &pidx}
	for i := 0; i < 3; i++ {
		resp, err := e2.Do(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Release()
	}
	_, _, cover := e2.CacheStats()
	if cover.Builds != 1 {
		t.Errorf("cover artifact built %d times for one (dataset, bound) after reopen", cover.Builds)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		resp, err := e2.Do(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Release()
	}); allocs > 0 {
		t.Errorf("warm recovered Do allocates %.1f times per call, want 0", allocs)
	}
}

// TestOpenDatasetDomainMismatch: a dataset persisted over one engine's
// domain must be refused by an engine whose regions linearize differently,
// with an error naming both domains.
func TestOpenDatasetDomainMismatch(t *testing.T) {
	_, _, _, dir := persistFixture(t, PersistConfig{})
	shifted := geom.Rect{Min: geom.Pt(50_000, 50_000), Max: geom.Pt(58_000, 55_000)}
	other := NewEngine(data.Regions(data.PartitionIn(7, shifted, 2, 2, 5)))
	if other.domain == DomainForRegions(dataRegions(92, 5, 5, 8)...) {
		t.Fatal("fixture regions collide; pick a different extent")
	}
	_, err := other.OpenDataset("req", dir, PersistConfig{})
	if err == nil {
		t.Fatal("foreign-domain dataset was accepted")
	}
	if !strings.Contains(err.Error(), "domain") {
		t.Errorf("mismatch error does not name the domains: %v", err)
	}
}

// TestPersistRegistrationErrors pins the registration edge cases: double
// Persist, duplicate OpenDataset names, and opening a directory that holds
// no store.
func TestPersistRegistrationErrors(t *testing.T) {
	e, ds, _, dir := persistFixture(t, PersistConfig{})
	if err := ds.Persist(t.TempDir(), PersistConfig{}); err == nil {
		t.Error("second Persist of the same dataset succeeded")
	}
	if _, err := e.OpenDataset("req", dir, PersistConfig{}); err == nil {
		t.Error("OpenDataset reused a registered name")
	}
	if _, err := e.OpenDataset("", dir, PersistConfig{}); err == nil {
		t.Error("OpenDataset accepted an empty name")
	}
	if _, err := e.OpenDataset("empty", t.TempDir(), PersistConfig{}); err == nil {
		t.Error("OpenDataset opened a directory with no snapshot")
	}
}

// TestDeleteCheckedSurfacesDurableError: a delete whose log write fails
// still reports its live count, but DeleteChecked also returns the wedge
// error that plain Delete discards, and the dataset refuses later
// mutations.
func TestDeleteCheckedSurfacesDurableError(t *testing.T) {
	_, ds, ps := requestFixture(t)
	if n, err := ds.DeleteChecked(9); n != 1 || err != nil {
		t.Fatalf("non-durable DeleteChecked = (%d, %v), want (1, nil)", n, err)
	}
	fs := errorfs.New()
	if err := ds.Persist("db", PersistConfig{fs: fs}); err != nil {
		t.Fatal(err)
	}
	if n, err := ds.DeleteChecked(10); n != 1 || err != nil {
		t.Fatalf("healthy durable DeleteChecked = (%d, %v), want (1, nil)", n, err)
	}
	fs.FailAt(fs.Ops()) // the very next call: the delete's log record write
	n, err := ds.DeleteChecked(11)
	if n != 1 {
		t.Fatalf("lost-log delete reported %d live rows, want 1", n)
	}
	if err == nil {
		t.Fatal("DeleteChecked swallowed the log failure")
	}
	if ds.Stats().DurableErr == nil {
		t.Fatal("log failure did not wedge the dataset")
	}
	if _, err := ds.Append(ps.Pts[:1], ps.Weights[:1]); err == nil {
		t.Fatal("wedged dataset accepted an append")
	}
	if n, err := ds.DeleteChecked(12); n != 0 || err == nil {
		t.Fatalf("wedged DeleteChecked = (%d, %v), want (0, refused)", n, err)
	}
}

// TestDurableCompactionCheckpoints: once durable, a threshold compaction
// doubles as a checkpoint — the log is retired and the generation advances
// on disk, so the next open replays nothing.
func TestDurableCompactionCheckpoints(t *testing.T) {
	_, ds, _, dir := persistFixture(t, PersistConfig{})
	before := ds.Stats()
	if before.WALRecords == 0 {
		t.Fatal("fixture left no log tail")
	}
	ds.Compact()
	after := ds.Stats()
	if after.WALRecords != 0 {
		t.Errorf("compaction left %d log records", after.WALRecords)
	}
	if after.CheckpointErr != nil || after.DurableErr != nil {
		t.Fatalf("checkpoint failed: %+v", after)
	}

	e2 := NewEngine(dataRegions(92, 5, 5, 8))
	ds2, err := e2.OpenDataset("req2", dir, PersistConfig{})
	if err != nil {
		t.Fatal(err)
	}
	st := ds2.Stats()
	if st.WALRecords != 0 {
		t.Errorf("reopen after checkpoint replayed %d records", st.WALRecords)
	}
	if st.Generation == 0 {
		t.Error("generation was not persisted")
	}
	if ds2.Len() != ds.Len() {
		t.Errorf("recovered %d live rows, want %d", ds2.Len(), ds.Len())
	}
}
