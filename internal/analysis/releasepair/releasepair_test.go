package releasepair_test

import (
	"testing"

	"distbound/internal/analysis/analysistest"
	"distbound/internal/analysis/releasepair"
)

func TestReleasePair(t *testing.T) {
	analysistest.Run(t, ".", releasepair.Analyzer, "release")
}

// TestCachePut exercises the pooled-response-cached rule's negative space:
// a Response without Release or scratch (the shard layer's merged shape)
// may be cached directly.
func TestCachePut(t *testing.T) {
	analysistest.Run(t, ".", releasepair.Analyzer, "cacheput")
}
