package geom

import "math"

// This file implements the Hausdorff distance of §2.2:
//
//	d_H(g, g') = max( max_{p'∈g'} min_{p∈g} d(p,p'),  max_{p∈g} min_{p'∈g'} d(p',p) )
//
// The library uses it to *verify* the distance bound that raster
// approximations guarantee by construction: d_H(polygon, cell union) ≤ ε
// when boundary cells have side ≤ ε/√2.
//
// Regions here are treated as filled sets (not just boundaries), matching the
// paper's guarantee that false positives/negatives are within ε of the
// original geometry. The directed distance from set A to set B is
// max_{a∈A} dist(a, B); for filled planar sets this maximum is attained on
// the boundary of A, so sampling A's boundary densely suffices.

// RegionSet is the minimal view of a filled planar set needed to estimate
// Hausdorff distances: membership plus distance-to-set.
type RegionSet interface {
	ContainsPoint(Point) bool
	DistToPoint(Point) float64
}

// SampleRingBoundary returns points spaced at most step apart along the ring
// boundary, always including every vertex.
func SampleRingBoundary(r Ring, step float64) []Point {
	if step <= 0 {
		step = 1
	}
	var out []Point
	for i := range r {
		e := r.Edge(i)
		out = append(out, e.A)
		l := e.Length()
		n := int(l / step)
		for k := 1; k <= n; k++ {
			t := float64(k) / float64(n+1)
			out = append(out, e.A.Add(e.B.Sub(e.A).Scale(t)))
		}
	}
	return out
}

// SampleRegionBoundary samples all boundary rings of a Polygon or
// MultiPolygon at the given step.
func SampleRegionBoundary(rg Region, step float64) []Point {
	var out []Point
	switch v := rg.(type) {
	case *Polygon:
		for _, ring := range v.Rings() {
			out = append(out, SampleRingBoundary(ring, step)...)
		}
	case *MultiPolygon:
		for _, p := range v.Polygons {
			for _, ring := range p.Rings() {
				out = append(out, SampleRingBoundary(ring, step)...)
			}
		}
	}
	return out
}

// DirectedHausdorff returns an estimate of max over the sampled points of
// their distance to the target set.
func DirectedHausdorff(samples []Point, target RegionSet) float64 {
	var d float64
	for _, p := range samples {
		if v := target.DistToPoint(p); v > d {
			d = v
		}
	}
	return d
}

// HausdorffDist estimates the (filled-set) Hausdorff distance between two
// region sets whose boundary samples are given. The estimate is a lower
// bound that converges to the true value as the sampling step shrinks; tests
// use a step well below the tolerance being checked.
func HausdorffDist(aSamples []Point, a RegionSet, bSamples []Point, b RegionSet) float64 {
	return math.Max(DirectedHausdorff(aSamples, b), DirectedHausdorff(bSamples, a))
}

// PointSetHausdorff returns the exact Hausdorff distance between two finite
// point sets (used by the approximation-quality ablation where geometries are
// compared via dense samples on both sides).
func PointSetHausdorff(a, b []Point) float64 {
	directed := func(xs, ys []Point) float64 {
		var dmax float64
		for _, x := range xs {
			dmin := math.Inf(1)
			for _, y := range ys {
				if d := x.Dist2(y); d < dmin {
					dmin = d
				}
			}
			if dmin > dmax {
				dmax = dmin
			}
		}
		return math.Sqrt(dmax)
	}
	return math.Max(directed(a, b), directed(b, a))
}
