package shard

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"distbound"
	"distbound/internal/data"
	"distbound/internal/geom"
	"distbound/internal/testutil"
)

// fixture builds the same workload twice: sharded into n shards, and as a
// single unsharded engine forced onto the resident point-index strategy —
// the reference every scatter-gather answer must merge back to.
func fixture(t *testing.T, seed int64, npts, nshards int) (*Sharded, []uint64, *distbound.Engine, *distbound.Dataset, []distbound.Region, []distbound.Point, []float64) {
	t.Helper()
	// Partition regions tile the whole city, so the derived domain covers
	// every taxi point: both sides register the identical live set.
	regions := data.Regions(data.Partition(5, 4, 4, 12))
	pts, _ := data.TaxiPoints(seed, npts)
	ws := testutil.ExactWeights(rand.New(rand.NewSource(seed+1)), len(pts))

	s, ids, err := New("taxi", regions, pts, ws, nshards)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	e := distbound.NewEngine(regions)
	ds, err := e.RegisterPoints("taxi", pts, ws)
	if err != nil {
		t.Fatal(err)
	}
	return s, ids, e, ds, regions, pts, ws
}

var allAggs = []distbound.Agg{distbound.Count, distbound.Sum, distbound.Avg, distbound.Min, distbound.Max}

// unshardedDo answers req on the reference engine with the same plan the
// shards run: resident point index, single-threaded join.
func unshardedDo(t *testing.T, e *distbound.Engine, ds *distbound.Dataset, aggs []distbound.Agg, bound float64) distbound.Response {
	t.Helper()
	strat := distbound.StrategyPointIdx
	resp, err := e.Do(context.Background(), distbound.Request{
		Dataset: ds, Aggs: aggs, Bound: bound, Strategy: &strat, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestShardedDifferential is the acceptance oracle: for every aggregate and
// several bounds, the merged scatter-gather answer must be bit-identical to
// the unsharded point-index answer. ExactWeights keeps every partial sum an
// exact float64, so even SUM/AVG — exact only up to reassociation in
// general — compare bitwise here; COUNT/MIN/MAX are unconditionally
// identical.
func TestShardedDifferential(t *testing.T) {
	s, _, e, ds, _, _, _ := fixture(t, 3, 12000, 8)
	if got := s.NumShards(); got < 2 {
		t.Fatalf("fixture collapsed to %d shards; differential needs a real partition", got)
	}
	for _, bound := range []float64{16, 64, 256} {
		resp, err := s.Do(context.Background(), Request{Aggs: allAggs, Bound: bound, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		want := unshardedDo(t, e, ds, allAggs, bound)
		for k, agg := range allAggs {
			testutil.CheckIdentical(t, fmt.Sprintf("bound=%g agg=%v", bound, agg), want.Results[k], resp.Results[k])
		}
		want.Release()
	}
}

// TestShardedWorkerInvariance: the gather merges in ascending shard order
// regardless of scatter width, so any Workers setting yields bitwise the
// same answer.
func TestShardedWorkerInvariance(t *testing.T) {
	s, _, _, _, _, _, _ := fixture(t, 9, 6000, 6)
	base, err := s.Do(context.Background(), Request{Aggs: allAggs, Bound: 64, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{-1, 0, 3, 16} {
		got, err := s.Do(context.Background(), Request{Aggs: allAggs, Bound: 64, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		for k, agg := range allAggs {
			testutil.CheckIdentical(t, fmt.Sprintf("workers=%d agg=%v", w, agg), base.Results[k], got.Results[k])
		}
	}
}

// TestShardedPartitioning checks the structural invariants New promises:
// contiguous ascending key intervals tiling [0, MaxUint64], every reported
// ID decoding to the shard owning the point's key, and the live count
// matching the input.
func TestShardedPartitioning(t *testing.T) {
	s, ids, _, _, _, pts, _ := fixture(t, 7, 5000, 8)
	st := s.Stats()
	if st.Dropped != 0 {
		t.Fatalf("city-covering regions dropped %d points", st.Dropped)
	}
	if st.Live != len(pts) {
		t.Fatalf("live %d != registered %d", st.Live, len(pts))
	}
	if len(st.PerShard) != s.NumShards() {
		t.Fatalf("stats report %d shards, have %d", len(st.PerShard), s.NumShards())
	}
	if st.PerShard[0].LoKey != 0 {
		t.Fatalf("first shard starts at %d", st.PerShard[0].LoKey)
	}
	for i := 1; i < len(st.PerShard); i++ {
		if st.PerShard[i].LoKey != st.PerShard[i-1].HiKey+1 {
			t.Fatalf("shard %d starts at %d; predecessor ends at %d", i, st.PerShard[i].LoKey, st.PerShard[i-1].HiKey)
		}
	}
	if last := st.PerShard[len(st.PerShard)-1].HiKey; last != math.MaxUint64 {
		t.Fatalf("last shard ends at %d", last)
	}
	for i, id := range ids {
		if id == NoID {
			t.Fatalf("point %d dropped despite covering regions", i)
		}
		si := int(id >> shardIDBits)
		key, ok := s.domain.LeafPos(distbound.Hilbert, pts[i])
		if !ok {
			t.Fatalf("point %d unexpectedly out of domain", i)
		}
		if key < s.shards[si].lo || key > s.shards[si].hi {
			t.Fatalf("point %d routed to shard %d [%d,%d] but has key %d", i, si, s.shards[si].lo, s.shards[si].hi, key)
		}
	}
}

// TestShardedMutationParity appends and deletes the same logical points on
// both sides — routed global IDs on the sharded one, registration/append
// IDs on the unsharded one — and requires the answers to stay identical.
func TestShardedMutationParity(t *testing.T) {
	s, sids, e, ds, _, pts, _ := fixture(t, 13, 4000, 5)

	extra, _ := data.TaxiPoints(17, 600)
	extraWs := testutil.ExactWeights(rand.New(rand.NewSource(18)), len(extra))
	gids, err := s.Append(extra, extraWs)
	if err != nil {
		t.Fatal(err)
	}
	uids, err := ds.Append(extra, extraWs)
	if err != nil {
		t.Fatal(err)
	}

	// Delete a slice of the registration-time points and a slice of the
	// appended ones on both sides.
	var delS, delU []uint64
	for i := 100; i < len(pts); i += 7 {
		delS = append(delS, sids[i])
		delU = append(delU, uint64(i))
	}
	for i := 0; i < len(extra); i += 3 {
		delS = append(delS, gids[i])
		delU = append(delU, uids[i])
	}
	if got, want := s.Delete(delS...), ds.Delete(delU...); got != want {
		t.Fatalf("sharded delete removed %d, unsharded %d", got, want)
	}
	// Idempotence: re-deleting removes nothing.
	if got := s.Delete(delS...); got != 0 {
		t.Fatalf("re-delete removed %d", got)
	}

	resp, err := s.Do(context.Background(), Request{Aggs: allAggs, Bound: 64})
	if err != nil {
		t.Fatal(err)
	}
	want := unshardedDo(t, e, ds, allAggs, 64)
	for k, agg := range allAggs {
		testutil.CheckIdentical(t, fmt.Sprintf("post-mutation agg=%v", agg), want.Results[k], resp.Results[k])
	}
	want.Release()

	// Compaction folds every shard's delta; answers must not move.
	s.Compact()
	ds.Compact()
	resp2, err := s.Do(context.Background(), Request{Aggs: allAggs, Bound: 64})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.DeltaProbed != 0 {
		t.Fatalf("post-compaction query probed %d delta rows", resp2.DeltaProbed)
	}
	want2 := unshardedDo(t, e, ds, allAggs, 64)
	for k, agg := range allAggs {
		testutil.CheckIdentical(t, fmt.Sprintf("post-compaction agg=%v", agg), want2.Results[k], resp2.Results[k])
	}
	want2.Release()
}

// TestShardedFanOut proves the routing economy the issue demands: a query
// over small regions tucked into opposite corners of a large domain must
// not contact all N shards, while still answering exactly.
func TestShardedFanOut(t *testing.T) {
	full := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(data.CitySize, data.CitySize)}
	cornerA := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(512, 512)}
	cornerB := geom.Rect{Min: geom.Pt(data.CitySize-512, data.CitySize-512), Max: geom.Pt(data.CitySize, data.CitySize)}
	// An anchor region spanning the full extent fixes the domain at city
	// size; the two query-relevant corner polygons stay tiny within it.
	regions := data.Regions(data.PartitionIn(21, full, 1, 1, 8))
	regions = append(regions, data.Regions(data.PartitionIn(22, cornerA, 1, 1, 8))...)
	regions = append(regions, data.Regions(data.PartitionIn(23, cornerB, 1, 1, 8))...)

	pts, _ := data.TaxiPointsIn(25, 8000, full)
	s, _, err := New("corners", regions, pts, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.NumShards() != 8 {
		t.Fatalf("fixture collapsed to %d shards", s.NumShards())
	}

	// The full-extent anchor region forces a wide fan-out.
	wide, err := s.Do(context.Background(), Request{Aggs: []distbound.Agg{distbound.Count}, Bound: 16})
	if err != nil {
		t.Fatal(err)
	}
	if wide.ShardsContacted != 8 {
		t.Fatalf("full-extent region contacted %d/8 shards", wide.ShardsContacted)
	}

	// Corner-only regions over the same partition: rebuild without the
	// anchor, same points, and the cover must route past most shards.
	corners := regions[1:]
	sc, _, err := New("corners2", corners, pts, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if sc.NumShards() != 8 {
		t.Fatalf("corner fixture collapsed to %d shards", sc.NumShards())
	}
	resp, err := sc.Do(context.Background(), Request{Aggs: []distbound.Agg{distbound.Count}, Bound: 16})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ShardsContacted < 1 || resp.ShardsContacted >= sc.NumShards() {
		t.Fatalf("corner regions contacted %d/%d shards; routing should skip the middle of the key space",
			resp.ShardsContacted, sc.NumShards())
	}

	// The answer must still be exact vs a brute classification.
	cls := testutil.Classify(pts, nil, corners, 16)
	cls.Check(t, "corner fan-out", distbound.Count, resp.Results[0])

	st := sc.Stats()
	if st.Queries != 1 || st.ContactedTotal != uint64(resp.ShardsContacted) || st.MaxFanOut != resp.ShardsContacted {
		t.Fatalf("stats = %+v after one query contacting %d", st, resp.ShardsContacted)
	}
}

// TestRoute exercises the two-pointer intersection directly on synthetic
// boundaries, including ranges spanning several shards, ranges between
// shards, and wide ranges arriving before narrow ones.
func TestRoute(t *testing.T) {
	s := &Sharded{shards: []shardState{
		{lo: 0, hi: 99},
		{lo: 100, hi: 199},
		{lo: 200, hi: 299},
		{lo: 300, hi: math.MaxUint64},
	}}
	cases := []struct {
		ranges []distbound.PosRange
		want   []int
	}{
		{nil, nil},
		{[]distbound.PosRange{{Lo: 5, Hi: 10}}, []int{0}},
		{[]distbound.PosRange{{Lo: 95, Hi: 105}}, []int{0, 1}},
		{[]distbound.PosRange{{Lo: 0, Hi: 1000}}, []int{0, 1, 2, 3}},
		// A wide range sorted before a narrow one must not be skipped for
		// later shards.
		{[]distbound.PosRange{{Lo: 0, Hi: 250}, {Lo: 5, Hi: 6}}, []int{0, 1, 2}},
		{[]distbound.PosRange{{Lo: 110, Hi: 120}, {Lo: 130, Hi: 140}, {Lo: 310, Hi: 320}}, []int{1, 3}},
		// Ranges falling entirely between two shards' populated keys still
		// route to the owner of their interval.
		{[]distbound.PosRange{{Lo: 205, Hi: 207}}, []int{2}},
	}
	for i, c := range cases {
		got := s.route(c.ranges)
		if len(got) != len(c.want) {
			t.Fatalf("case %d: route = %v, want %v", i, got, c.want)
		}
		for k := range got {
			if got[k] != c.want[k] {
				t.Fatalf("case %d: route = %v, want %v", i, got, c.want)
			}
		}
	}
}

// TestShardedPersistOpen round-trips the partition through disk: persist,
// close, open, and the recovered Sharded must answer identically and stay
// mutable/durable.
func TestShardedPersistOpen(t *testing.T) {
	regions := data.Regions(data.Partition(5, 4, 4, 12))
	pts, _ := data.TaxiPoints(31, 3000)
	ws := testutil.ExactWeights(rand.New(rand.NewSource(32)), len(pts))
	s, _, err := New("taxi", regions, pts, ws, 4)
	if err != nil {
		t.Fatal(err)
	}
	before, err := s.Do(context.Background(), Request{Aggs: allAggs, Bound: 64})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := s.Persist(dir, distbound.PersistConfig{}); err != nil {
		t.Fatal(err)
	}
	// Mutations after Persist write-ahead log into the owning shard.
	extra, _ := data.TaxiPoints(33, 200)
	extraWs := testutil.ExactWeights(rand.New(rand.NewSource(34)), len(extra))
	gids, err := s.Append(extra, extraWs)
	if err != nil {
		t.Fatal(err)
	}
	s.Delete(gids[:50]...)
	mutated, err := s.Do(context.Background(), Request{Aggs: allAggs, Bound: 64})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	re, err := Open(regions, dir, distbound.PersistConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumShards() != 4 || !re.HasWeights() {
		t.Fatalf("recovered %d shards, weights=%v", re.NumShards(), re.HasWeights())
	}
	after, err := re.Do(context.Background(), Request{Aggs: allAggs, Bound: 64})
	if err != nil {
		t.Fatal(err)
	}
	for k, agg := range allAggs {
		testutil.CheckIdentical(t, fmt.Sprintf("recovered agg=%v", agg), mutated.Results[k], after.Results[k])
	}
	// Sanity: recovery really replayed the logged mutations, not just the
	// snapshot.
	if before.Results[0].Counts[0] == after.Results[0].Counts[0] &&
		re.Len() == len(pts) {
		t.Fatalf("recovered dataset ignored the logged mutations")
	}
	if want := len(pts) + len(extra) - 50; re.Len() != want {
		t.Fatalf("recovered %d live points, want %d", re.Len(), want)
	}
}

// TestShardedValidation covers the constructor's and query path's rejection
// cases, plus out-of-domain drop accounting.
func TestShardedValidation(t *testing.T) {
	regions := data.Regions(data.Partition(5, 2, 2, 8))
	pts, _ := data.TaxiPoints(41, 100)

	if _, _, err := New("", regions, pts, nil, 2); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, _, err := New("x", regions, pts, nil, 0); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, _, err := New("x", regions, pts, nil, MaxShards+1); err == nil {
		t.Fatal("oversized shard count accepted")
	}
	if _, _, err := New("x", regions, pts, []float64{1}, 2); err == nil {
		t.Fatal("mismatched weights accepted")
	}

	s, ids, err := New("x", regions, append(append([]distbound.Point(nil), pts...),
		geom.Pt(-1e9, -1e9)), nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if st := s.Stats(); st.Dropped != 1 || st.Live != len(pts) {
		t.Fatalf("dropped=%d live=%d after one out-of-domain point", st.Dropped, st.Live)
	}
	if ids[len(ids)-1] != NoID {
		t.Fatalf("out-of-domain point got ID %d", ids[len(ids)-1])
	}

	if _, err := s.Do(context.Background(), Request{Bound: 16}); err == nil {
		t.Fatal("empty aggregate set accepted")
	}
	if _, err := s.Do(context.Background(), Request{Aggs: []distbound.Agg{distbound.Count}}); err == nil {
		t.Fatal("zero bound accepted")
	}
	if _, err := s.Do(context.Background(), Request{Aggs: []distbound.Agg{distbound.Sum}, Bound: 16}); err == nil {
		t.Fatal("SUM without weights accepted")
	}
	if _, err := s.Append([]distbound.Point{geom.Pt(-1e9, -1e9)}, nil); err == nil {
		t.Fatal("out-of-domain append accepted")
	}
	if _, err := s.Append(pts[:2], []float64{1, 2}); err == nil {
		t.Fatal("weights appended to a weightless dataset")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Do(ctx, Request{Aggs: []distbound.Agg{distbound.Count}, Bound: 16}); err != context.Canceled {
		t.Fatalf("canceled context returned %v", err)
	}
}

// TestShardedResultCache pins the scatter-gather result cache's contract:
// a repeated identical query is served from the cache (no new shard
// contacts), any mutation on any shard moves the epoch sum and strands the
// entry, and a cached answer is bit-identical to the executed one and to the
// unsharded oracle.
func TestShardedResultCache(t *testing.T) {
	s, ids, e, ds, _, pts, ws := fixture(t, 21, 8000, 6)
	ctx := context.Background()
	req := Request{Aggs: allAggs, Bound: 64, Workers: 4}

	cold, err := s.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	st0 := s.CacheStats()
	if st0.Misses == 0 || s.results.Len() != 1 {
		t.Fatalf("cold query did not populate the cache: %+v len=%d", st0, s.results.Len())
	}
	contacts0 := s.Stats().ContactedTotal

	warm, err := s.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.CacheStats(); st.Hits != st0.Hits+1 {
		t.Fatalf("repeated query missed: %+v -> %+v", st0, st)
	}
	if got := s.Stats().ContactedTotal; got != contacts0 {
		t.Fatalf("cache hit still contacted shards: %d -> %d", contacts0, got)
	}
	if warm.ShardsContacted != cold.ShardsContacted || warm.RangesProbed != cold.RangesProbed {
		t.Fatalf("hit altered routing stats: cold %+v warm %+v", cold, warm)
	}
	want := unshardedDo(t, e, ds, allAggs, 64)
	for k, agg := range allAggs {
		testutil.CheckIdentical(t, fmt.Sprintf("warm agg=%v", agg), want.Results[k], warm.Results[k])
	}
	want.Release()

	// Workers shapes only the scatter width, never the answer, so it is
	// excluded from the key: a different Workers still hits.
	hits := s.CacheStats().Hits
	if _, err := s.Do(ctx, Request{Aggs: allAggs, Bound: 64, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if st := s.CacheStats(); st.Hits != hits+1 {
		t.Fatalf("Workers leaked into the cache key: %+v", st)
	}
	// A different bound is a different key.
	if _, err := s.Do(ctx, Request{Aggs: allAggs, Bound: 128}); err != nil {
		t.Fatal(err)
	}
	if st := s.CacheStats(); st.Hits != hits+1 {
		t.Fatalf("distinct bound hit a stale entry: %+v", st)
	}

	// Every mutation kind moves the epoch sum and strands the entry.
	mutate := []struct {
		name string
		do   func()
	}{
		{"append", func() {
			if _, err := s.Append(pts[:7], ws[:7]); err != nil {
				t.Fatal(err)
			}
		}},
		{"delete", func() {
			if n := s.Delete(ids[3]); n != 1 {
				t.Fatalf("delete removed %d points", n)
			}
		}},
		{"compact", s.Compact},
	}
	for _, m := range mutate {
		before := s.EpochSum()
		m.do()
		if after := s.EpochSum(); after == before {
			t.Fatalf("%s left the epoch sum at %d", m.name, before)
		}
		misses := s.CacheStats().Misses
		fresh, err := s.Do(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if st := s.CacheStats(); st.Misses != misses+1 {
			t.Fatalf("query after %s was served stale: %+v", m.name, st)
		}
		hits := s.CacheStats().Hits
		again, err := s.Do(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if st := s.CacheStats(); st.Hits != hits+1 {
			t.Fatalf("re-warm after %s missed: %+v", m.name, st)
		}
		for k, agg := range allAggs {
			testutil.CheckIdentical(t, fmt.Sprintf("after %s agg=%v", m.name, agg), fresh.Results[k], again.Results[k])
		}
	}
	// The mutated dataset's cached answer still matches a from-scratch merge:
	// mirror the append and delete on the unsharded reference (registration
	// IDs there are input positions, per TestShardedMutationParity).
	if _, err := ds.Append(pts[:7], ws[:7]); err != nil {
		t.Fatal(err)
	}
	if n := ds.Delete(3); n != 1 {
		t.Fatalf("reference delete removed %d", n)
	}
	want = unshardedDo(t, e, ds, allAggs, 64)
	final, err := s.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	for k, agg := range allAggs {
		testutil.CheckIdentical(t, fmt.Sprintf("post-mutation agg=%v", agg), want.Results[k], final.Results[k])
	}
	want.Release()

	// Disabling the cache is a full bypass: counters freeze.
	s.SetResultCacheCapacity(0)
	frozen := s.CacheStats()
	if _, err := s.Do(ctx, req); err != nil {
		t.Fatal(err)
	}
	if st := s.CacheStats(); st.Hits != frozen.Hits || st.Misses != frozen.Misses {
		t.Fatalf("disabled cache still probed: %+v -> %+v", frozen, st)
	}
}
