package distbound

import (
	"fmt"

	"distbound/internal/join"
	"distbound/internal/planner"
)

// Strategy identifies a physical plan for an aggregation query (§4).
type Strategy = planner.Strategy

// Physical plan strategies.
const (
	StrategyExact = planner.StrategyExact
	StrategyACT   = planner.StrategyACT
	StrategyBRJ   = planner.StrategyBRJ
)

// CostModel holds the planner's calibrated per-operation constants.
type CostModel = planner.CostModel

// Engine answers spatial aggregation queries over a fixed region set,
// choosing the physical plan with the §4 cost-based planner: the exact
// filter-and-refine join, the ACT-indexed approximate join, or the Bounded
// Raster Join — whichever is estimated cheapest for the requested bound and
// expected repetitions. Built indexes are cached and reused across calls.
type Engine struct {
	regions []Region
	domain  Domain
	model   planner.CostModel
	exact   *join.RStarJoiner
	act     map[float64]*join.ACTJoiner
}

// NewEngine creates an engine over the region set.
func NewEngine(regions []Region) *Engine {
	return &Engine{
		regions: regions,
		domain:  DomainForRegions(regions...),
		model:   planner.DefaultCostModel(),
		act:     map[float64]*join.ACTJoiner{},
	}
}

// SetCostModel overrides the planner constants (e.g. after calibrating on
// the target machine).
func (e *Engine) SetCostModel(m CostModel) { e.model = m }

// Plan returns the planner's decision for a query without executing it.
// bound ≤ 0 requests exact answers; repetitions is the number of times the
// caller expects to aggregate over this region set (amortizing index
// builds), minimum 1.
func (e *Engine) Plan(numPoints int, bound float64, repetitions int) planner.Plan {
	return e.model.Choose(planner.Query{
		NumPoints:   numPoints,
		Regions:     e.regions,
		Bound:       bound,
		Repetitions: repetitions,
	})
}

// Aggregate answers the aggregation query with the planner-selected
// strategy, reporting which strategy ran. Exact strategies ignore the bound;
// approximate ones guarantee every error is within bound of a region
// boundary.
func (e *Engine) Aggregate(ps PointSet, agg Agg, bound float64, repetitions int) (Result, Strategy, error) {
	plan := e.Plan(len(ps.Pts), bound, repetitions)
	strategy := plan.Strategy
	// MIN/MAX are not supported by the raster join; fall back to ACT, which
	// is the next-best approximate plan.
	if strategy == StrategyBRJ && (agg == Min || agg == Max) {
		strategy = StrategyACT
	}
	switch strategy {
	case StrategyExact:
		if e.exact == nil {
			e.exact = join.NewRStarJoiner(e.regions, 0)
		}
		res, err := e.exact.Aggregate(ps, agg)
		return res, strategy, err
	case StrategyACT:
		aj, ok := e.act[bound]
		if !ok {
			var err error
			aj, err = join.NewACTJoiner(e.regions, e.domain, Hilbert, bound, 0)
			if err != nil {
				return Result{}, strategy, fmt.Errorf("distbound: building ACT index: %w", err)
			}
			e.act[bound] = aj
		}
		res, err := aj.Aggregate(ps, agg)
		return res, strategy, err
	case StrategyBRJ:
		brj := join.BRJ{Bound: bound, Bounds: e.domain.Bounds()}
		res, _, err := brj.Run(ps, e.regions, agg)
		return res, strategy, err
	default:
		return Result{}, strategy, fmt.Errorf("distbound: unknown strategy %v", strategy)
	}
}

// Explain renders the cost comparison for a query, marking the chosen plan.
func (e *Engine) Explain(numPoints int, bound float64, repetitions int) string {
	return e.Plan(numPoints, bound, repetitions).Explain()
}
