package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func parseDecl(t *testing.T, src string) (*token.FileSet, *ast.File, *ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return fset, f, fd
		}
	}
	t.Fatal("no func decl")
	return nil, nil, nil
}

func TestFuncAnnotation(t *testing.T) {
	_, _, fd := parseDecl(t, `package p

// Frobnicate frobnicates.
//
//distbound:noalloc
//distbound:allow-background compat wrapper; callers hold no context
func Frobnicate() {}
`)
	if a, ok := FuncAnnotation(fd, "noalloc"); !ok || a.Reason != "" {
		t.Errorf("noalloc = %+v, %v; want present with empty reason", a, ok)
	}
	a, ok := FuncAnnotation(fd, "allow-background")
	if !ok {
		t.Fatal("allow-background not found")
	}
	if want := "compat wrapper; callers hold no context"; a.Reason != want {
		t.Errorf("reason = %q, want %q", a.Reason, want)
	}
	if _, ok := FuncAnnotation(fd, "allow-multisnapshot"); ok {
		t.Error("allow-multisnapshot unexpectedly present")
	}
}

func TestAnnotationRequiresDirectiveShape(t *testing.T) {
	// A spaced comment is prose, not a directive.
	_, _, fd := parseDecl(t, `package p

// distbound:noalloc
func F() {}
`)
	if _, ok := FuncAnnotation(fd, "noalloc"); ok {
		t.Error("spaced comment parsed as directive")
	}
}

func TestClassifyFile(t *testing.T) {
	fset := token.NewFileSet()
	cases := []struct {
		path string
		want FileClass
	}{
		{"/mod/engine.go", ClassLibrary},
		{"/mod/engine_test.go", ClassTest},
		{"/mod/cmd/spatialbench/main.go", ClassCommand},
		{"/mod/examples/demo/main.go", ClassExample},
		{"/mod/internal/join/coverplan.go", ClassLibrary},
	}
	for _, c := range cases {
		f, err := parser.ParseFile(fset, c.path, "package p\n", 0)
		if err != nil {
			t.Fatal(err)
		}
		pass := &Pass{Fset: fset, ModuleRoot: "/mod"}
		if got := pass.ClassifyFile(f); got != c.want {
			t.Errorf("ClassifyFile(%s) = %v, want %v", c.path, got, c.want)
		}
	}
}
