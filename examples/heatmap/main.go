// Heatmap: uses the §4 canvas algebra directly — render points to a canvas
// (per-pixel partial aggregates), render a region mask, blend the two, and
// display the masked density as ASCII art. This is the visual-exploration
// use case that motivates the paper (Uber Movement-style tools).
package main

import (
	"fmt"
	"log"
	"math"

	"distbound"
	"distbound/internal/data"
)

func main() {
	pts, _ := data.TaxiPoints(5, 300_000)

	// A coarse canvas over the whole city: 64×64 pixels.
	bounds := data.CityBounds()
	eps := bounds.Width() / 64 * math.Sqrt2
	grid := distbound.GridForBound(bounds.Min, eps)
	density, err := distbound.CanvasForRect(grid, bounds)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pts {
		x, y := grid.PixelOf(p)
		density.Add(x, y, 1)
	}

	// Mask: keep only the downtown quarter (a region rendered as a canvas).
	downtown := data.DowntownBounds()
	dtPoly, err := distbound.NewPolygon(distbound.Ring{
		downtown.Min,
		distbound.Pt(downtown.Max.X, downtown.Min.Y),
		downtown.Max,
		distbound.Pt(downtown.Min.X, downtown.Max.Y),
	})
	if err != nil {
		log.Fatal(err)
	}
	mask, err := distbound.CanvasForRect(grid, dtPoly.Bounds())
	if err != nil {
		log.Fatal(err)
	}
	mask.RenderRegion(dtPoly, 1)

	masked := density.Clone()
	if err := distbound.MaskCanvas(masked, mask, func(v float64) bool { return v > 0 }); err != nil {
		log.Fatal(err)
	}

	fmt.Println("city-wide pickup density (every canvas pixel is ~1.4 km):")
	printCanvas(density)
	fmt.Printf("\nmasked to downtown (blend/mask operators, %d of %d pickups):\n",
		int(masked.Sum()), int(density.Sum()))
	printCanvas(masked)
}

func printCanvas(c *distbound.Canvas) {
	shades := []rune(" .:-=+*#%@")
	maxV := 0.0
	for _, v := range c.Pix {
		if v > maxV {
			maxV = v
		}
	}
	for y := c.Y0 + c.H - 1; y >= c.Y0; y-- {
		for x := c.X0; x < c.X0+c.W; x++ {
			v := c.At(x, y)
			idx := 0
			if maxV > 0 && v > 0 {
				idx = 1 + int(math.Log1p(v)/math.Log1p(maxV)*float64(len(shades)-2))
				if idx >= len(shades) {
					idx = len(shades) - 1
				}
			}
			fmt.Print(string(shades[idx]))
		}
		fmt.Println()
	}
}
