package persist_test

import (
	"path/filepath"
	"testing"

	"distbound/internal/geom"
	"distbound/internal/pointstore/persist"
	"distbound/internal/testutil/errorfs"
)

// FuzzOpenArbitraryWAL runs full recovery — snapshot load plus log replay —
// with a pristine snapshot and an attacker-controlled log file. Open must
// never panic; when it succeeds, the recovered store must compact and
// serve without panicking. (A CRC-valid fuzzed record can still carry
// out-of-domain coordinates, which replay rejects: an error, never a tear.)
func FuzzOpenArbitraryWAL(f *testing.F) {
	fs := errorfs.New()
	d, failed := runScript(f, fs, crashScript())
	if failed != -1 {
		f.Fatalf("fixture run failed at logical op %d", failed)
	}
	snapPath := filepath.Join(crashDir, persist.SnapshotName)
	walPath := filepath.Join(crashDir, persist.WALName(d.Stats().Generation))
	snap := fs.Data(snapPath)
	wal := fs.Data(walPath)

	f.Add(wal)
	f.Add(wal[:0])
	f.Add(wal[:len(wal)/2])
	for _, i := range []int{2, 9, 20, 33, len(wal) - 7} {
		c := append([]byte(nil), wal...)
		c[i] ^= 0x21
		f.Add(c)
	}
	f.Add([]byte("DBWL"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fs2 := errorfs.New()
		fs2.SetData(snapPath, snap)
		fs2.SetData(walPath, data)
		d2, err := persist.Open(crashDir, persist.Options{FS: fs2})
		if err != nil {
			return
		}
		c := canonicalize(d2.Mutable())
		if c.nextID < uint64(48) {
			t.Fatalf("recovered store lost snapshot rows: nextID %d", c.nextID)
		}
		if err := d2.Close(); err != nil {
			t.Fatalf("closing recovered store: %v", err)
		}
	})
}

// FuzzDurableOps drives a durable store and a plain in-memory Mutable
// through the same fuzz-chosen op stream — appends, deletes, checkpoints,
// syncs, and full close/reopen cycles — and requires the durable side to
// stay bit-identical to the oracle at every reopen and at the end. This is
// the persistence extension of the pointstore FuzzMutableOps differential.
func FuzzDurableOps(f *testing.F) {
	f.Add([]byte{0, 16, 16, 0, 200, 9, 3, 0, 0, 1, 0, 0, 2, 0, 0, 3, 0, 0})
	f.Add([]byte{5, 1, 1, 2, 0, 0, 5, 2, 2, 1, 3, 0, 3, 0, 0, 4, 0, 0, 0, 7, 7})
	f.Add([]byte("\x00\x10\x20\x03\x00\x00\x01\x00\x00\x02\x00\x00\x03\x40\xff"))
	f.Add([]byte{2, 0, 0, 3, 0, 0, 2, 0, 0, 3, 0, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 180 { // ~60 logical ops bounds reopen-heavy streams
			ops = ops[:180]
		}
		fs := errorfs.New()
		m := freshCrashMutable(t)
		oracle := freshCrashMutable(t)
		d, err := persist.Create(crashDir, m, persist.Options{FS: fs})
		if err != nil {
			t.Fatal(err)
		}
		reopen := func() {
			if err := d.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			d, err = persist.Open(crashDir, persist.Options{FS: fs})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			if !equalCanon(canonicalize(d.Mutable()), canonicalize(oracle)) {
				t.Fatal("reopened store diverged from oracle")
			}
		}
		for len(ops) >= 3 {
			op, a, b := ops[0], ops[1], ops[2]
			ops = ops[3:]
			switch op % 6 {
			case 0:
				pt := []geom.Point{{X: float64(a) * 4, Y: float64(b) * 4}}
				ws := []float64{float64(a^b) / 8}
				gotIDs, err := d.Append(pt, ws)
				if err != nil {
					t.Fatalf("append: %v", err)
				}
				wantIDs, err := oracle.Append(pt, ws)
				if err != nil {
					t.Fatalf("oracle append: %v", err)
				}
				if gotIDs[0] != wantIDs[0] {
					t.Fatalf("issued id %d, oracle issued %d", gotIDs[0], wantIDs[0])
				}
			case 1:
				id := (uint64(a) | uint64(b)<<8) % oracle.NextID()
				got, err := d.Delete(id)
				if err != nil {
					t.Fatalf("delete: %v", err)
				}
				if want := oracle.Delete(id); got != want {
					t.Fatalf("delete removed %d rows, oracle removed %d", got, want)
				}
			case 2:
				if err := d.Checkpoint(); err != nil {
					t.Fatalf("checkpoint: %v", err)
				}
			case 3:
				reopen()
			case 4:
				if err := d.Sync(); err != nil {
					t.Fatalf("sync: %v", err)
				}
			case 5:
				pts := []geom.Point{
					{X: float64(a), Y: float64(b)},
					{X: float64(b) * 2, Y: float64(a) * 2},
					{X: 1000, Y: float64(a^b) * 3},
				}
				ws := []float64{1, -2.5, float64(a)}
				if _, err := d.Append(pts, ws); err != nil {
					t.Fatalf("append batch: %v", err)
				}
				if _, err := oracle.Append(pts, ws); err != nil {
					t.Fatalf("oracle append batch: %v", err)
				}
			}
		}
		reopen()
	})
}
