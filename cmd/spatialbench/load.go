package main

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"distbound"
	"distbound/internal/data"
	"distbound/internal/geom"
	"distbound/internal/join"
	"distbound/internal/pointstore"
	"distbound/internal/sfc"
)

// loadConfig parameterizes the -concurrency serving benchmark: N client
// goroutines drive one shared Engine with mixed-bound queries and the run
// reports throughput and latency percentiles — the serving-layer complement
// of the paper-reproduction experiments.
type loadConfig struct {
	seed        int64
	numPoints   int
	censusCount int
	concurrency int
	duration    time.Duration
	bounds      []float64
	agg         distbound.Agg
	repetitions int
	batch       int
	workers     int
	queryPoints int
	resident    bool
	multiagg    bool
	jsonPath    string

	// persist checkpoints the resident dataset to disk after the load
	// phase, logs a mutation tail, reopens it in a second engine and
	// verifies bit-identical serving — the durability smoke test.
	persist bool

	ingest           bool
	ingestBatch      int
	compactThreshold int

	// skew > 0 replaces the census regions with rectangles whose sizes —
	// and therefore distance-bounded cover sizes — follow a Zipf law with
	// this exponent: a few giant regions over a long tail of tiny ones, the
	// workload that used to pin p99 behind whichever worker drew the giant
	// under region-count sharding.
	skew float64

	// calibrate fits the planner's cost model to this host before the load
	// phase and reports the fitted constants plus a calibrated-vs-default
	// strategy diff.
	calibrate bool

	// cache runs the repeated-workload result-cache benchmark: a Zipf mix of
	// request shapes driven twice — cache off, then cache on — reporting hit
	// rate and cached-vs-executed latency. Outside -cache mode the result
	// cache is disabled for the whole run, so BENCH_resident keeps measuring
	// the fold path rather than memcpy from a warm entry.
	cache bool
}

// zipfRegions builds n rectangle regions whose side lengths decay as
// 1/rank^s over the city bounds: region 0 spans a quarter of the domain,
// the tail shrinks toward single cells. The resulting cover-range counts
// are what the cost-weighted partitioning has to balance.
func zipfRegions(seed int64, n int, s float64) []distbound.Region {
	rng := rand.New(rand.NewSource(seed))
	b := data.CityBounds()
	out := make([]distbound.Region, 0, n)
	for i := 0; i < n; i++ {
		frac := 0.25 / math.Pow(float64(i+1), s)
		w, h := b.Width()*frac, b.Height()*frac
		x0 := b.Min.X + rng.Float64()*(b.Width()-w)
		y0 := b.Min.Y + rng.Float64()*(b.Height()-h)
		poly, err := geom.NewPolygon(geom.Ring{
			geom.Pt(x0, y0), geom.Pt(x0+w, y0), geom.Pt(x0+w, y0+h), geom.Pt(x0, y0+h),
		})
		if err != nil {
			panic(err) // axis-aligned rectangles are always simple rings
		}
		out = append(out, poly)
	}
	return out
}

// parseBounds parses a comma-separated bound list ("0,16,64").
func parseBounds(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad bound %q: %w", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseAgg maps an aggregate name to its Agg.
func parseAgg(s string) (distbound.Agg, error) {
	switch strings.ToLower(s) {
	case "count":
		return distbound.Count, nil
	case "sum":
		return distbound.Sum, nil
	case "avg":
		return distbound.Avg, nil
	case "min":
		return distbound.Min, nil
	case "max":
		return distbound.Max, nil
	default:
		return 0, fmt.Errorf("unknown aggregate %q", s)
	}
}

// querySlice is one client query: a contiguous window of the point pool,
// simulating per-tenant or per-time-slice subsets.
func (cfg loadConfig) querySlice(ps distbound.PointSet, rng *rand.Rand) distbound.PointSet {
	n := cfg.queryPoints
	if n <= 0 || n >= len(ps.Pts) {
		return ps
	}
	off := rng.Intn(len(ps.Pts) - n + 1)
	out := distbound.PointSet{Pts: ps.Pts[off : off+n]}
	if ps.Weights != nil {
		out.Weights = ps.Weights[off : off+n]
	}
	return out
}

// verifyPaths checks, per bound, that the sequential, parallel and batched
// execution paths return identical counts on one shared warm engine.
func verifyPaths(e *distbound.Engine, ps distbound.PointSet, cfg loadConfig) error {
	for _, bound := range cfg.bounds {
		// Warm twice so caches and plans are stable before comparing.
		for i := 0; i < 2; i++ {
			if _, _, err := e.Aggregate(ps, cfg.agg, bound, cfg.repetitions); err != nil {
				return fmt.Errorf("warmup bound %g: %w", bound, err)
			}
		}
		e.SetWorkers(1)
		seq, seqStrat, err := e.Aggregate(ps, cfg.agg, bound, cfg.repetitions)
		if err != nil {
			return fmt.Errorf("sequential bound %g: %w", bound, err)
		}
		e.SetWorkers(0)
		par, parStrat, err := e.Aggregate(ps, cfg.agg, bound, cfg.repetitions)
		if err != nil {
			return fmt.Errorf("parallel bound %g: %w", bound, err)
		}
		// A single-query batch earns no same-bound sharing credit, so it
		// plans with exactly the same effective repetitions as the
		// sequential call — count equality compares like with like for any
		// -reps value, including 1.
		batch := e.AggregateBatch([]distbound.BatchQuery{
			{Points: ps, Agg: cfg.agg, Bound: bound, Repetitions: cfg.repetitions},
		}, 1)
		for i, r := range batch {
			if r.Err != nil {
				return fmt.Errorf("batched bound %g query %d: %w", bound, i, r.Err)
			}
		}
		if seqStrat != parStrat {
			return fmt.Errorf("bound %g: strategy drifted between sequential (%v) and parallel (%v)",
				bound, seqStrat, parStrat)
		}
		// Count equality is only promised plan-for-plan; with identical
		// effective repetitions and warm caches, the batch must plan the
		// sequential strategy — anything else is a real planning bug.
		if batch[0].Strategy != seqStrat {
			return fmt.Errorf("bound %g: batched query planned %v, sequential planned %v",
				bound, batch[0].Strategy, seqStrat)
		}
		for ri := range seq.Counts {
			if seq.Counts[ri] != par.Counts[ri] {
				return fmt.Errorf("bound %g region %d: parallel count %d != sequential %d",
					bound, ri, par.Counts[ri], seq.Counts[ri])
			}
			if err := valuesMatch(cfg.agg, seq, par, ri); err != nil {
				return fmt.Errorf("bound %g region %d parallel: %w", bound, ri, err)
			}
			if batch[0].Result.Counts[ri] != seq.Counts[ri] {
				return fmt.Errorf("bound %g region %d: batched count %d != sequential %d",
					bound, ri, batch[0].Result.Counts[ri], seq.Counts[ri])
			}
			if err := valuesMatch(cfg.agg, seq, batch[0].Result, ri); err != nil {
				return fmt.Errorf("bound %g region %d batched: %w", bound, ri, err)
			}
		}
	}
	return nil
}

// valuesMatch compares one region's aggregate value between execution
// paths. MIN/MAX extremes merge without float reassociation, so they must
// match exactly; SUM/AVG differ only by the order additions associate, so
// they get a tight relative tolerance.
func valuesMatch(agg distbound.Agg, want, got distbound.Result, ri int) error {
	w, g := want.Value(ri), got.Value(ri)
	switch agg {
	case distbound.Sum, distbound.Avg:
		tol := 1e-9 * math.Max(math.Abs(w), 1)
		if math.Abs(g-w) > tol {
			return fmt.Errorf("value %g != %g beyond reassociation tolerance", g, w)
		}
	default:
		if g != w {
			return fmt.Errorf("value %g != %g", g, w)
		}
	}
	return nil
}

// verifyResident checks, per bound, that the sequential, parallel and
// batched resident paths return bit-identical results (per-region probes
// are deterministic for any worker count).
func verifyResident(e *distbound.Engine, ds *distbound.Dataset, cfg loadConfig) error {
	for _, bound := range cfg.bounds {
		if bound <= 0 {
			continue
		}
		for i := 0; i < 2; i++ { // warm covers and plans
			if _, _, err := e.AggregateDataset(ds, cfg.agg, bound, cfg.repetitions); err != nil {
				return fmt.Errorf("resident warmup bound %g: %w", bound, err)
			}
		}
		e.SetWorkers(1)
		seq, seqStrat, err := e.AggregateDataset(ds, cfg.agg, bound, cfg.repetitions)
		if err != nil {
			return fmt.Errorf("resident sequential bound %g: %w", bound, err)
		}
		e.SetWorkers(0)
		par, parStrat, err := e.AggregateDataset(ds, cfg.agg, bound, cfg.repetitions)
		if err != nil {
			return fmt.Errorf("resident parallel bound %g: %w", bound, err)
		}
		if seqStrat != parStrat {
			return fmt.Errorf("resident bound %g: strategy drifted between sequential (%v) and parallel (%v)",
				bound, seqStrat, parStrat)
		}
		batch := e.AggregateBatch([]distbound.BatchQuery{
			{Dataset: ds, Agg: cfg.agg, Bound: bound, Repetitions: cfg.repetitions},
		}, 1)
		if batch[0].Err != nil {
			return fmt.Errorf("resident batched bound %g: %w", bound, batch[0].Err)
		}
		if batch[0].Strategy != seqStrat {
			return fmt.Errorf("resident bound %g: batched query planned %v, sequential planned %v",
				bound, batch[0].Strategy, seqStrat)
		}
		for ri := range seq.Counts {
			if par.Counts[ri] != seq.Counts[ri] || batch[0].Result.Counts[ri] != seq.Counts[ri] {
				return fmt.Errorf("resident bound %g region %d: counts disagree (seq %d par %d batch %d)",
					bound, ri, seq.Counts[ri], par.Counts[ri], batch[0].Result.Counts[ri])
			}
			if err := valuesMatch(cfg.agg, seq, par, ri); err != nil {
				return fmt.Errorf("resident bound %g region %d parallel: %w", bound, ri, err)
			}
			if err := valuesMatch(cfg.agg, seq, batch[0].Result, ri); err != nil {
				return fmt.Errorf("resident bound %g region %d batched: %w", bound, ri, err)
			}
		}
	}
	return nil
}

// pathComparison is one bound's repetition-heavy head-to-head between the
// streaming and resident paths.
type pathComparison struct {
	Bound             float64 `json:"bound"`
	StreamingStrategy string  `json:"streaming_strategy"`
	ResidentStrategy  string  `json:"resident_strategy"`
	StreamingMS       float64 `json:"streaming_ms_per_query"`
	ResidentMS        float64 `json:"resident_ms_per_query"`
	Speedup           float64 `json:"speedup"`
}

// compareResident times the streaming Aggregate path against the resident
// AggregateDataset path on the full pool, per bound, on warm caches — the
// repetition-heavy serving scenario the resident strategy exists for.
func compareResident(e *distbound.Engine, ds *distbound.Dataset, pool distbound.PointSet, cfg loadConfig) []pathComparison {
	const reps = 5
	var out []pathComparison
	for _, bound := range cfg.bounds {
		if bound <= 0 {
			continue
		}
		var c pathComparison
		c.Bound = bound
		// Warm both paths so each is measured with its build cost paid.
		if _, _, err := e.Aggregate(pool, cfg.agg, bound, cfg.repetitions); err != nil {
			fmt.Printf("head-to-head bound %g: streaming warmup failed: %v\n", bound, err)
			continue
		}
		if _, _, err := e.AggregateDataset(ds, cfg.agg, bound, cfg.repetitions); err != nil {
			fmt.Printf("head-to-head bound %g: resident warmup failed: %v\n", bound, err)
			continue
		}
		timed := func(run func() (distbound.Strategy, error)) (float64, string, error) {
			t0 := time.Now()
			var strat distbound.Strategy
			for i := 0; i < reps; i++ {
				var err error
				if strat, err = run(); err != nil {
					return 0, "", err
				}
			}
			return float64(time.Since(t0).Microseconds()) / 1e3 / reps, strat.String(), nil
		}
		var err error
		c.StreamingMS, c.StreamingStrategy, err = timed(func() (distbound.Strategy, error) {
			_, strat, err := e.Aggregate(pool, cfg.agg, bound, cfg.repetitions)
			return strat, err
		})
		if err != nil {
			fmt.Printf("head-to-head bound %g: streaming run failed: %v\n", bound, err)
			continue
		}
		c.ResidentMS, c.ResidentStrategy, err = timed(func() (distbound.Strategy, error) {
			_, strat, err := e.AggregateDataset(ds, cfg.agg, bound, cfg.repetitions)
			return strat, err
		})
		if err != nil {
			fmt.Printf("head-to-head bound %g: resident run failed: %v\n", bound, err)
			continue
		}
		if c.ResidentMS > 0 {
			c.Speedup = c.StreamingMS / c.ResidentMS
		}
		fmt.Printf("head-to-head bound %g: streaming(%s)=%.1fms resident(%s)=%.1fms speedup=%.1f×\n",
			c.Bound, c.StreamingStrategy, c.StreamingMS, c.ResidentStrategy, c.ResidentMS, c.Speedup)
		out = append(out, c)
	}
	return out
}

// coverPlanComparison is one bound's head-to-head between the per-region
// reference execution and the global cover-plan execution on the same
// joiner and snapshot.
type coverPlanComparison struct {
	Bound          float64 `json:"bound"`
	Ranges         int     `json:"ranges"`
	UniqueRanges   int     `json:"unique_ranges"`
	BoundaryProbes int     `json:"boundary_probes"`
	PerRegionMS    float64 `json:"per_region_ms_per_query"`
	CoverPlanMS    float64 `json:"cover_plan_ms_per_query"`
	Speedup        float64 `json:"speedup"`
}

// compareCoverPlan times the per-region reference execution against the
// cover-plan execution, per bound, single-threaded on both sides so the
// measured gap is the plan's (sweep + dedup + inverted delta), not the
// partitioning's. It deliberately builds a private store over the pool —
// one extra sort+index build and a second copy of the columns — so the
// engine's caches and the registered dataset stay untouched by the
// head-to-head (the library does not expose its internal store handle,
// and a bench is not a reason to widen that surface).
func compareCoverPlan(regions []distbound.Region, pool distbound.PointSet, cfg loadConfig) []coverPlanComparison {
	const reps = 3
	store, err := pointstore.NewMutable(pool.Pts, pool.Weights, data.CityDomain(), sfc.Hilbert{})
	if err != nil {
		fmt.Printf("cover-plan head-to-head: store build failed: %v\n", err)
		return nil
	}
	ctx := context.Background()
	aggs := []distbound.Agg{distbound.Count, distbound.Sum}
	var out []coverPlanComparison
	for _, bound := range cfg.bounds {
		if bound <= 0 {
			continue
		}
		pj, err := join.NewPointIdxJoiner(regions, store, bound, 0)
		if err != nil {
			fmt.Printf("cover-plan head-to-head bound %g: %v\n", bound, err)
			continue
		}
		c := coverPlanComparison{
			Bound:          bound,
			Ranges:         pj.NumRanges(),
			UniqueRanges:   pj.NumUniqueRanges(),
			BoundaryProbes: pj.NumBoundaryProbes(),
		}
		timed := func(run func() error) (float64, bool) {
			t0 := time.Now()
			for i := 0; i < reps; i++ {
				if err := run(); err != nil {
					fmt.Printf("cover-plan head-to-head bound %g: %v\n", bound, err)
					return 0, false
				}
			}
			return float64(time.Since(t0).Microseconds()) / 1e3 / reps, true
		}
		var ok bool
		if c.PerRegionMS, ok = timed(func() error {
			_, err := pj.AggregateMultiPerRegion(ctx, aggs, 1)
			return err
		}); !ok {
			continue
		}
		results := join.NewResults(aggs, len(regions))
		if c.CoverPlanMS, ok = timed(func() error {
			_, err := pj.AggregateMultiInto(ctx, aggs, 1, results)
			return err
		}); !ok {
			continue
		}
		if c.CoverPlanMS > 0 {
			c.Speedup = c.PerRegionMS / c.CoverPlanMS
		}
		fmt.Printf("cover-plan bound %g: %d ranges → %d unique (%d boundaries); per-region=%.1fms plan=%.1fms speedup=%.1f×\n",
			c.Bound, c.Ranges, c.UniqueRanges, c.BoundaryProbes, c.PerRegionMS, c.CoverPlanMS, c.Speedup)
		out = append(out, c)
	}
	return out
}

// multiAggComparison is one bound's head-to-head between a single Do
// carrying all five aggregates and five sequential single-aggregate calls.
type multiAggComparison struct {
	Bound        float64 `json:"bound"`
	Strategy     string  `json:"strategy"`
	SinglePassMS float64 `json:"single_pass_ms"`
	SequentialMS float64 `json:"sequential_ms"`
	Speedup      float64 `json:"speedup"`
}

// compareMultiAgg times Engine.Do with the full aggregate set against five
// sequential single-aggregate Do calls, per bound, on warm caches — the
// one-plan / one-build / one-fold economy the Request API exists for. With
// -resident the head-to-head runs on the registered dataset, otherwise on
// the ad-hoc pool.
func compareMultiAgg(e *distbound.Engine, ds *distbound.Dataset, pool distbound.PointSet, cfg loadConfig) []multiAggComparison {
	const reps = 5
	ctx := context.Background()
	allAggs := []distbound.Agg{distbound.Count, distbound.Sum, distbound.Avg, distbound.Min, distbound.Max}
	var out []multiAggComparison
	for _, bound := range cfg.bounds {
		if bound <= 0 {
			continue
		}
		base := distbound.Request{Aggs: allAggs, Bound: bound, Repetitions: cfg.repetitions}
		if ds != nil {
			base.Dataset = ds
		} else {
			base.Points = pool
		}
		// Warm plans and artifacts on BOTH sides so the timed loops measure
		// folds only: the single-agg requests plan independently of the set
		// (a Count alone may pick BRJ where the Min-carrying set cannot), so
		// each side must build its own artifacts before the clock starts.
		warm, err := e.Do(ctx, base)
		if err != nil {
			fmt.Printf("multi-agg bound %g: warmup failed: %v\n", bound, err)
			continue
		}
		warmupOK := true
		for _, agg := range allAggs {
			req := base
			req.Aggs = []distbound.Agg{agg}
			if _, err := e.Do(ctx, req); err != nil {
				fmt.Printf("multi-agg bound %g: %v warmup failed: %v\n", bound, agg, err)
				warmupOK = false
				break
			}
		}
		if !warmupOK {
			continue
		}
		// Strategy labels the single-pass side; sequential calls may run a
		// different plan per aggregate.
		c := multiAggComparison{Bound: bound, Strategy: warm.Strategy.String()}

		t0 := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := e.Do(ctx, base); err != nil {
				fmt.Printf("multi-agg bound %g: single-pass run failed: %v\n", bound, err)
				return out
			}
		}
		c.SinglePassMS = float64(time.Since(t0).Microseconds()) / 1e3 / reps

		t0 = time.Now()
		for i := 0; i < reps; i++ {
			for _, agg := range allAggs {
				req := base
				req.Aggs = []distbound.Agg{agg}
				if _, err := e.Do(ctx, req); err != nil {
					fmt.Printf("multi-agg bound %g: sequential run failed: %v\n", bound, err)
					return out
				}
			}
		}
		c.SequentialMS = float64(time.Since(t0).Microseconds()) / 1e3 / reps
		if c.SinglePassMS > 0 {
			c.Speedup = c.SequentialMS / c.SinglePassMS
		}
		fmt.Printf("multi-agg bound %g (%s): single-pass=%.1fms sequential×5=%.1fms speedup=%.1f×\n",
			c.Bound, c.Strategy, c.SinglePassMS, c.SequentialMS, c.Speedup)
		out = append(out, c)
	}
	return out
}

// cacheBenchJSON is the result_cache section of BENCH_cache.json: the
// repeated-workload head-to-head between executed and cache-served queries.
type cacheBenchJSON struct {
	Shapes        int     `json:"shapes"`
	Queries       int     `json:"queries"`
	ZipfExponent  float64 `json:"zipf_exponent"`
	HitRate       float64 `json:"hit_rate"`
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	Evictions     int64   `json:"evictions"`
	ExecutedP50MS float64 `json:"executed_p50_ms"`
	ExecutedP99MS float64 `json:"executed_p99_ms"`
	CachedP50MS   float64 `json:"cached_p50_ms"`
	CachedP99MS   float64 `json:"cached_p99_ms"`
	SpeedupP50    float64 `json:"speedup_p50"`
}

// benchResultCache drives a Zipf-weighted mix of request shapes (bound ×
// aggregate set) over the resident dataset twice — once with the result
// cache disabled (every query folds) and once enabled (the popular shapes
// serve from cache) — on the same warmed cover artifacts, so the gap is
// exactly what the cache saves a repeated workload.
func benchResultCache(e *distbound.Engine, ds *distbound.Dataset, cfg loadConfig) *cacheBenchJSON {
	ctx := context.Background()
	aggSets := [][]distbound.Agg{
		{distbound.Count},
		{distbound.Sum},
		{distbound.Avg},
		{distbound.Min, distbound.Max},
		{distbound.Count, distbound.Sum, distbound.Avg, distbound.Min, distbound.Max},
	}
	var shapes []distbound.Request
	for _, bound := range cfg.bounds {
		if bound <= 0 {
			continue
		}
		for _, aggs := range aggSets {
			shapes = append(shapes, distbound.Request{
				Dataset: ds, Aggs: aggs, Bound: bound, Repetitions: cfg.repetitions,
			})
		}
	}
	if len(shapes) == 0 {
		fmt.Println("result-cache bench: no positive bounds; skipping")
		return nil
	}
	// The Zipf mix: a few hot shapes over a long cold tail — the repeated
	// dashboard/tile workload the result cache exists for.
	const zipfS = 1.2
	const queries = 2000
	rng := rand.New(rand.NewSource(cfg.seed + 99))
	z := rand.NewZipf(rng, zipfS, 1, uint64(len(shapes)-1))
	order := make([]int, queries)
	for i := range order {
		order[i] = int(z.Uint64())
	}

	run := func() ([]time.Duration, error) {
		lats := make([]time.Duration, 0, queries)
		for _, si := range order {
			t0 := time.Now()
			resp, err := e.Do(ctx, shapes[si])
			if err != nil {
				return nil, err
			}
			resp.Release()
			lats = append(lats, time.Since(t0))
		}
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		return lats, nil
	}
	// Nanosecond resolution: cache hits are sub-microsecond, and rounding
	// them to zero would degenerate the speedup ratio.
	pct := func(lats []time.Duration, p float64) float64 {
		return float64(lats[int(p*float64(len(lats)-1))].Nanoseconds()) / 1e6
	}

	// Warm every shape's cover artifacts with the cache off, so the executed
	// phase measures folds on warm plans, not artifact builds.
	e.SetResultCacheCapacity(0)
	for si := range shapes {
		resp, err := e.Do(ctx, shapes[si])
		if err != nil {
			fmt.Printf("result-cache bench: warmup failed: %v\n", err)
			return nil
		}
		resp.Release()
	}
	executed, err := run()
	if err != nil {
		fmt.Printf("result-cache bench: executed phase failed: %v\n", err)
		return nil
	}

	e.SetResultCacheCapacity(distbound.DefaultResultCacheCapacity)
	before := e.ResultCacheStats()
	cached, err := run()
	if err != nil {
		fmt.Printf("result-cache bench: cached phase failed: %v\n", err)
		return nil
	}
	st := e.ResultCacheStats()

	out := &cacheBenchJSON{
		Shapes:        len(shapes),
		Queries:       queries,
		ZipfExponent:  zipfS,
		Hits:          st.Hits - before.Hits,
		Misses:        st.Misses - before.Misses,
		Evictions:     st.Evictions - before.Evictions,
		ExecutedP50MS: pct(executed, 0.50),
		ExecutedP99MS: pct(executed, 0.99),
		CachedP50MS:   pct(cached, 0.50),
		CachedP99MS:   pct(cached, 0.99),
	}
	if total := out.Hits + out.Misses; total > 0 {
		out.HitRate = float64(out.Hits) / float64(total)
	}
	if out.CachedP50MS > 0 {
		out.SpeedupP50 = out.ExecutedP50MS / out.CachedP50MS
	}
	fmt.Printf("result cache: %d shapes, %d queries (zipf %g): hit rate %.1f%% (%d/%d); executed p50=%.3fms p99=%.3fms cached p50=%.3fms p99=%.3fms speedup(p50)=%.1f×\n",
		out.Shapes, out.Queries, zipfS, 100*out.HitRate, out.Hits, out.Hits+out.Misses,
		out.ExecutedP50MS, out.ExecutedP99MS, out.CachedP50MS, out.CachedP99MS, out.SpeedupP50)
	return out
}

// runLoad executes the concurrent load benchmark.
func runLoad(cfg loadConfig) error {
	fmt.Printf("load mode: %d clients, %v, %d-point pool, %d regions, bounds %v, agg %v, batch %d, resident %v, skew %g\n",
		cfg.concurrency, cfg.duration, cfg.numPoints, cfg.censusCount, cfg.bounds, cfg.agg, cfg.batch, cfg.resident, cfg.skew)

	pts, weights := data.TaxiPoints(cfg.seed, cfg.numPoints)
	pool := distbound.PointSet{Pts: pts, Weights: weights}
	regions := data.Regions(data.Census(cfg.seed+1, cfg.censusCount))
	if cfg.skew > 0 {
		regions = zipfRegions(cfg.seed+1, cfg.censusCount, cfg.skew)
		var total, biggest float64
		for _, rg := range regions {
			a := rg.Bounds().Area()
			total += a
			if a > biggest {
				biggest = a
			}
		}
		fmt.Printf("zipf regions: exponent %g, largest region holds %.1f%% of the total covered area — p99 shows whether cost-weighted partitioning tames it\n",
			cfg.skew, 100*biggest/total)
	}
	e := distbound.NewEngine(regions)
	// Execution benchmarks measure execution: outside -cache mode the result
	// cache is disabled so repeated identical queries keep exercising the
	// fold path instead of serving a memoized copy.
	if !cfg.cache {
		e.SetResultCacheCapacity(0)
	}

	var ds *distbound.Dataset
	var comparisons []pathComparison
	if cfg.resident {
		if cfg.queryPoints > 0 {
			fmt.Println("note: -resident aggregates the whole pool per query; -querypoints only affects the ad-hoc verification slice")
		}
		t0 := time.Now()
		var err error
		ds, err = e.RegisterPoints("pool", pts, weights)
		if err != nil {
			return fmt.Errorf("registering dataset: %w", err)
		}
		fmt.Printf("registered resident dataset: %d points (%d outside domain), %.1f MB, built in %v\n",
			ds.Len(), ds.Dropped(), float64(ds.MemoryBytes())/1e6, time.Since(t0).Round(time.Millisecond))
	}

	verifyStart := time.Now()
	if err := verifyPaths(e, cfg.querySlice(pool, rand.New(rand.NewSource(cfg.seed))), cfg); err != nil {
		return fmt.Errorf("verification failed: %w", err)
	}
	if cfg.resident {
		if err := verifyResident(e, ds, cfg); err != nil {
			return fmt.Errorf("resident verification failed: %w", err)
		}
	}
	fmt.Printf("verification: counts and values agree across sequential, parallel and batched paths (%v)\n",
		time.Since(verifyStart).Round(time.Millisecond))

	// Fix the configured worker count before any timed measurement, so the
	// head-to-head and the load phase land in one consistent configuration.
	e.SetWorkers(cfg.workers)
	// Calibration runs before the timed phases so they execute under the
	// fitted model (which, by the uniform-scaling design, plans the same
	// strategies the defaults would).
	var calibration *calibrationJSON
	if cfg.calibrate {
		var err error
		if calibration, err = runCalibration(e, ds, cfg); err != nil {
			return err
		}
	}
	var coverPlans []coverPlanComparison
	if cfg.resident {
		comparisons = compareResident(e, ds, pool, cfg)
		coverPlans = compareCoverPlan(regions, pool, cfg)
	}
	// The cache bench leaves the result cache enabled, so the load phase in
	// -cache mode measures the repeated workload the cache serves.
	var cacheBench *cacheBenchJSON
	if cfg.cache {
		cacheBench = benchResultCache(e, ds, cfg)
	}
	var multiAggs []multiAggComparison
	if cfg.multiagg {
		multiAggs = compareMultiAgg(e, ds, pool, cfg)
	}

	type clientStats struct {
		latencies  []time.Duration
		strategies map[distbound.Strategy]int
	}
	stats := make([]clientStats, cfg.concurrency)
	clientErrs := make([]error, cfg.concurrency)
	var wg sync.WaitGroup
	start := make(chan struct{})
	deadline := time.Now().Add(cfg.duration)
	// The load context carries the run deadline into the engine: a query
	// still in flight when the bench ends is cancelled through the same
	// chain a real serving deadline would use, instead of running to
	// completion against a detached background context.
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()

	for c := 0; c < cfg.concurrency; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(c)*7919))
			st := clientStats{strategies: map[distbound.Strategy]int{}}
			// Keep whatever the client completed even if it aborts on an
			// error; the run then still reports honest partial numbers
			// alongside the failure.
			defer func() { stats[c] = st }()
			<-start
			for i := 0; time.Now().Before(deadline); i++ {
				if cfg.batch > 0 {
					reqs := make([]distbound.Request, cfg.batch)
					for q := range reqs {
						reqs[q] = distbound.Request{
							Aggs:        []distbound.Agg{cfg.agg},
							Bound:       cfg.bounds[(c+i+q)%len(cfg.bounds)],
							Repetitions: cfg.repetitions,
						}
						if cfg.resident {
							reqs[q].Dataset = ds
						} else {
							reqs[q].Points = cfg.querySlice(pool, rng)
						}
					}
					t0 := time.Now()
					resps, err := e.DoBatch(ctx, reqs, cfg.workers)
					el := time.Since(t0)
					if err != nil {
						// The deadline expiring mid-batch is the clean end of
						// the run, not a client failure.
						if ctx.Err() == nil {
							clientErrs[c] = err
						}
						return
					}
					for q := range resps {
						r := &resps[q]
						if r.Err != nil {
							if ctx.Err() == nil {
								clientErrs[c] = r.Err
							}
							return
						}
						// Per-query latency inside a batch is the batch
						// latency: callers wait for the whole batch.
						st.latencies = append(st.latencies, el)
						st.strategies[r.Strategy]++
						r.Release()
					}
				} else {
					bound := cfg.bounds[(c+i)%len(cfg.bounds)]
					req := distbound.Request{
						Aggs:        []distbound.Agg{cfg.agg},
						Bound:       bound,
						Repetitions: cfg.repetitions,
					}
					if cfg.resident {
						req.Dataset = ds
					} else {
						req.Points = cfg.querySlice(pool, rng)
					}
					t0 := time.Now()
					resp, err := e.Do(ctx, req)
					if err != nil {
						if ctx.Err() == nil {
							clientErrs[c] = err
						}
						return
					}
					st.latencies = append(st.latencies, time.Since(t0))
					st.strategies[resp.Strategy]++
					resp.Release()
				}
			}
		}(c)
	}
	close(start)
	t0 := time.Now()
	wg.Wait()
	elapsed := time.Since(t0)

	var all []time.Duration
	strategies := map[distbound.Strategy]int{}
	for _, st := range stats {
		all = append(all, st.latencies...)
		for s, n := range st.strategies {
			strategies[s] += n
		}
	}
	if len(all) == 0 {
		for c, err := range clientErrs {
			if err != nil {
				return fmt.Errorf("no queries completed; client %d: %w", c, err)
			}
		}
		return fmt.Errorf("no queries completed")
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(all)-1))
		return all[i]
	}

	fmt.Printf("\ncompleted %d queries in %v across %d clients\n", len(all), elapsed.Round(time.Millisecond), cfg.concurrency)
	fmt.Printf("throughput: %.1f queries/s\n", float64(len(all))/elapsed.Seconds())
	fmt.Printf("latency: p50=%v p90=%v p99=%v max=%v\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), all[len(all)-1].Round(time.Microsecond))
	fmt.Printf("strategies:")
	for _, s := range []distbound.Strategy{distbound.StrategyExact, distbound.StrategyACT, distbound.StrategyBRJ, distbound.StrategyPointIdx} {
		if n := strategies[s]; n > 0 {
			fmt.Printf(" %v=%d", s, n)
		}
	}
	fmt.Println()
	actStats, brjStats, coverStats := e.CacheStats()
	fmt.Printf("index caches: act{hits=%d builds=%d coalesced=%d evictions=%d} brj{hits=%d builds=%d coalesced=%d evictions=%d} cover{hits=%d builds=%d coalesced=%d evictions=%d}\n",
		actStats.Hits, actStats.Builds, actStats.Coalesced, actStats.Evictions,
		brjStats.Hits, brjStats.Builds, brjStats.Coalesced, brjStats.Evictions,
		coverStats.Hits, coverStats.Builds, coverStats.Coalesced, coverStats.Evictions)
	for c, err := range clientErrs {
		if err != nil {
			return fmt.Errorf("client %d aborted: %w (numbers above are partial)", c, err)
		}
	}
	// The persistence phase runs after the timed load so its mutation tail
	// and checkpoint compaction cannot perturb the throughput numbers.
	var persistence *persistenceJSON
	if cfg.persist {
		var err error
		if persistence, err = runPersistPhase(e, ds, pool, regions, cfg); err != nil {
			return fmt.Errorf("persistence phase: %w", err)
		}
	}
	if cfg.cache {
		st := e.ResultCacheStats()
		fmt.Printf("result cache (load phase included): hits=%d misses=%d evictions=%d\n", st.Hits, st.Misses, st.Evictions)
	}
	if cfg.jsonPath != "" {
		if err := writeBenchJSON(cfg, len(all), elapsed, pct, all[len(all)-1], strategies, comparisons, multiAggs, coverPlans, calibration, persistence, cacheBench); err != nil {
			return fmt.Errorf("writing %s: %w", cfg.jsonPath, err)
		}
		fmt.Printf("wrote %s\n", cfg.jsonPath)
	}
	return nil
}
